"""The distributed layer: protocol framing, leases/fencing, equivalence.

The acceptance property mirrors the pool's
(`tests/engine/test_equivalence.py`): a coordinator + N worker nodes
over localhost TCP must merge to the serial report **byte-for-byte**,
including with a node SIGKILLed mid-shard — and a run whose nodes never
return must degrade to honest truncated `Coverage`, not raise and not
lie.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.engine import EngineParams, run_scenario
from repro.engine.chaos import _dist_node_main
from repro.engine.dist import (Channel, Coordinator, DistParams, LeaseTable,
                               Severed, run_node)
from repro.engine.dist.handshake import (REFUSED_EXIT, engine_fingerprint,
                                         handshake_mismatch)
from repro.engine.dist.lease import ACCEPTED, DONE, FAILED, PENDING, STALE
from repro.engine.dist.protocol import PROTOCOL_VERSION, parse_hostport
from repro.engine.faults import Fault, FaultPlan

from ._support import assert_reports_equal, hw_spec

#: Generous bound for CI boxes; localhost runs settle in well under it.
JOIN_TIMEOUT = 60.0


def _chan_pair():
    a, b = socket.socketpair()
    return Channel(a), Channel(b)


def _engine_params(**overrides) -> EngineParams:
    base = dict(exhaustive=True, target_shards=4, max_steps=400,
                heartbeat_interval=0.05)
    base.update(overrides)
    return EngineParams(**base)


def _serial_report():
    return run_scenario(None, EngineParams(exhaustive=True, max_steps=400),
                        spec=hw_spec()).report


def _serve_async(coord: Coordinator):
    box = {}
    thread = threading.Thread(
        target=lambda: box.update(result=coord.serve()), daemon=True)
    thread.start()
    return thread, box


class TestChannel:
    def test_roundtrip(self):
        a, b = _chan_pair()
        a.send("hello", node="n0", pid=17, proto=1)
        assert b.recv(timeout=2.0) == {"t": "hello", "node": "n0",
                                       "pid": 17, "proto": 1}

    def test_reserved_field_names_are_refused(self):
        a, _b = _chan_pair()
        # "crc"/"v" would be clobbered by the line framing and fail the
        # frame CRC on the far side — refuse loudly instead.
        with pytest.raises(ValueError):
            a.send("result", crc=123)
        with pytest.raises(ValueError):
            a.send("result", v=2)

    def test_corrupt_frame_is_skipped_not_trusted(self):
        a, b = _chan_pair()
        a.sock.sendall(b'{"t": "grant", "shard_id": 9, "crc": "bad"}\n')
        a.send("idle", wait=0.1)
        msg = b.recv(timeout=2.0)
        assert msg["t"] == "idle"
        assert b.corrupt == 1

    def test_timeout_returns_none_and_channel_survives(self):
        # Regression: a makefile()-based reader is permanently poisoned
        # by its first timeout; the channel must keep working after one.
        a, b = _chan_pair()
        assert b.recv(timeout=0.05) is None
        a.send("beat", node="n0", shard_id=None, token=0, execs=3)
        assert b.recv(timeout=2.0)["execs"] == 3

    def test_partial_frame_survives_timeout(self):
        a, b = _chan_pair()
        a.send("idle", wait=0.25)
        # Cut a second frame in half across a timeout boundary.
        line = b'{"no": "newline yet"'
        a.sock.sendall(line)
        assert b.recv(timeout=0.5)["t"] == "idle"
        assert b.recv(timeout=0.05) is None
        a.sock.sendall(b', "crc": "00000000"}\n')
        a.send("done")
        # The reassembled middle frame fails its CRC (counted), the
        # trailing frame arrives intact.
        assert b.recv(timeout=2.0)["t"] == "done"
        assert b.corrupt == 1

    def test_eof_raises_connection_error(self):
        a, b = _chan_pair()
        a.close()
        with pytest.raises(ConnectionError):
            b.recv(timeout=2.0)

    def test_parse_hostport(self):
        assert parse_hostport("10.0.0.2:9000", 7671) == ("10.0.0.2", 9000)
        assert parse_hostport("myhost", 7671) == ("myhost", 7671)
        assert parse_hostport(":9000", 7671) == ("127.0.0.1", 9000)

    def test_parse_hostport_ipv6(self):
        # Regression: rpartition(':') parsed '::1' as host '::' port 1
        # and left the brackets on '[::1]:7671'.
        assert parse_hostport("[::1]:9000", 7671) == ("::1", 9000)
        assert parse_hostport("[::1]", 7671) == ("::1", 7671)
        assert parse_hostport("::1", 7671) == ("::1", 7671)
        assert parse_hostport("fe80::2:1", 7671) == ("fe80::2:1", 7671)
        with pytest.raises(ValueError):
            parse_hostport("[::1:9000", 7671)
        with pytest.raises(ValueError):
            parse_hostport("[::1]9000", 7671)


class TestChannelFaults:
    def test_drop_is_one_shot_so_the_resend_lands(self):
        a, b = _chan_pair()
        plan = FaultPlan((Fault("net.send.result", "drop",
                                shard=0, attempt=1),))
        with plan:
            a.send("result", fault_shard=0, fault_attempt=1, shard_id=0)
            assert b.recv(timeout=0.1) is None
            a.send("result", fault_shard=0, fault_attempt=1, shard_id=0)
            assert b.recv(timeout=2.0)["shard_id"] == 0

    def test_duplicate_delivers_two_copies(self):
        a, b = _chan_pair()
        plan = FaultPlan((Fault("net.send.result", "duplicate",
                                shard=1, attempt=1),))
        with plan:
            a.send("result", fault_shard=1, fault_attempt=1, shard_id=1)
        assert b.recv(timeout=2.0)["shard_id"] == 1
        assert b.recv(timeout=2.0)["shard_id"] == 1

    def test_sever_cuts_the_connection(self):
        a, b = _chan_pair()
        plan = FaultPlan((Fault("net.send.result", "sever",
                                shard=2, attempt=1),))
        with plan:
            with pytest.raises(Severed):
                a.send("result", fault_shard=2, fault_attempt=1)
        with pytest.raises(ConnectionError):
            b.recv(timeout=2.0)


class TestLeaseTable:
    def test_grant_is_idempotent_per_node(self):
        table = LeaseTable(3, lease_seconds=10.0, backoff_base=0.0)
        lease = table.grant("a", now=0.0)
        # A lost grant reply means the node re-asks: same lease back,
        # renewed — never a second shard it would silently abandon.
        again = table.grant("a", now=1.0)
        assert again is lease and again.deadline == 11.0

    def test_stale_token_is_fenced(self):
        table = LeaseTable(1, lease_seconds=1.0, backoff_base=0.0)
        old = table.grant("a", now=0.0)
        table.expire(now=5.0)  # node paused past its deadline
        fresh = table.grant("b", now=5.0)
        assert fresh.token > old.token
        # The resurrected node submits under the fenced-off token.
        assert table.complete(0, old.token, "a") == STALE
        assert table.status(0) == PENDING or table.lease_of(0) is fresh
        assert table.complete(0, fresh.token, "b") == ACCEPTED
        assert table.status(0) == DONE

    def test_renew_requires_exact_lease(self):
        table = LeaseTable(1, lease_seconds=1.0, backoff_base=0.0)
        lease = table.grant("a", now=0.0)
        assert not table.renew("b", 0, lease.token, now=0.5)
        assert not table.renew("a", 0, lease.token + 7, now=0.5)
        assert table.renew("a", 0, lease.token, now=0.5)
        assert lease.deadline == 1.5

    def test_requeue_excludes_the_failing_node(self):
        table = LeaseTable(1, max_retries=3, lease_seconds=1.0,
                           backoff_base=0.0)
        lease = table.grant("a", now=0.0)
        table.fail(0, lease.token, "a", now=0.0, reason="boom")
        assert table.grant("a", now=1.0) is None
        assert table.grant("a", now=1.0, lenient=True) is not None

    def test_retry_budget_exhaustion_fails_the_shard(self):
        table = LeaseTable(1, max_retries=1, lease_seconds=1.0,
                           backoff_base=0.0)
        for attempt in (1, 2):
            lease = table.grant("a", now=float(attempt), lenient=True)
            assert lease.attempt == attempt
            table.fail(0, lease.token, "a", now=float(attempt),
                       reason="boom")
        assert table.status(0) == FAILED
        assert table.settled and table.failed_ids == [0]

    def test_all_live_nodes_excluded_grants_leniently(self):
        # Regression: with two nodes and a shard failed once on each,
        # both were excluded and neither could be granted the shard,
        # so it sat PENDING forever and the coordinator never settled.
        table = LeaseTable(1, max_retries=3, lease_seconds=1.0,
                           backoff_base=0.0)
        live = {"a", "b"}
        for node in ("a", "b"):
            lease = table.grant(node, now=0.0, live_nodes=live)
            assert lease is not None
            table.fail(0, lease.token, node, now=0.0, reason="boom")
        assert table.status(0) == PENDING
        # Strict grants still honour the exclusion...
        assert table.grant("a", now=1.0) is None
        # ...but once every live node is excluded, liveness wins.
        lease = table.grant("a", now=1.0, live_nodes=live)
        assert lease is not None and lease.attempt == 3

    def test_partial_exclusion_still_waits_for_the_clean_node(self):
        table = LeaseTable(1, max_retries=3, lease_seconds=1.0,
                           backoff_base=0.0)
        lease = table.grant("a", now=0.0, live_nodes={"a", "b"})
        table.fail(0, lease.token, "a", now=0.0, reason="boom")
        # "b" is live and not excluded: "a" must not take the shard.
        assert table.grant("a", now=1.0, live_nodes={"a", "b"}) is None
        assert table.grant("b", now=1.0, live_nodes={"a", "b"}) is not None

    def test_release_node_requeues_all_its_leases(self):
        table = LeaseTable(4, lease_seconds=10.0, backoff_base=0.0)
        a1, a2 = table.grant("a", 0.0), table.grant("b", 0.0)
        lost = table.release_node("a", now=0.0)
        assert [l.shard_id for l in lost] == [a1.shard_id]
        assert table.status(a1.shard_id) == PENDING
        assert table.lease_of(a2.shard_id) is a2


class TestCoordinatorConnections:
    def test_stale_connection_does_not_release_reconnected_node(self):
        """Regression: _serve_conn's finally ran release_node even when
        the node had already reconnected under the same id, so the dying
        old connection requeued the fresh lease and burned a retry."""
        coord = Coordinator(_engine_params(), hw_spec(),
                            DistParams(lease_seconds=30.0,
                                       node_wait_seconds=30.0))
        acceptor = threading.Thread(target=coord._accept_loop,
                                    daemon=True)
        acceptor.start()
        old = new = None
        try:
            old = Channel(socket.create_connection(
                (coord.host, coord.port), timeout=5.0))
            old.send("hello", node="n0", pid=1, proto=PROTOCOL_VERSION,
                     fp=engine_fingerprint())
            assert old.recv(timeout=5.0)["t"] == "welcome"
            # Same node id reconnects (sever fault, TCP reset) and
            # leases a shard on the fresh connection.
            new = Channel(socket.create_connection(
                (coord.host, coord.port), timeout=5.0))
            new.send("hello", node="n0", pid=1, proto=PROTOCOL_VERSION,
                     fp=engine_fingerprint())
            assert new.recv(timeout=5.0)["t"] == "welcome"
            new.send("want", node="n0")
            grant = new.recv(timeout=5.0)
            assert grant["t"] == "grant"
            # The old connection dies; its serve thread must leave the
            # reconnected node's lease (and retry budget) alone.
            old.close()
            deadline = time.time() + 5.0
            while time.time() < deadline:
                with coord._lock:
                    if "n0" in coord._nodes:
                        break
                time.sleep(0.05)
            time.sleep(0.3)  # let the old serve thread run its finally
            with coord._lock:
                lease = coord.table.lease_of(grant["shard_id"])
                assert lease is not None
                assert lease.token == grant["token"]
                assert coord.table.attempts(grant["shard_id"]) == 1
                assert coord._nodes.get("n0") is not None
        finally:
            coord._stop.set()
            try:
                coord._listener.close()
            except OSError:
                pass
            for ch in (old, new):
                if ch is not None:
                    ch.close()


class TestHandshake:
    def test_matching_fingerprint_is_accepted(self):
        assert handshake_mismatch(_engine_params(),
                                  engine_fingerprint()) is None

    def test_mismatch_reasons_are_one_line(self):
        params = _engine_params()
        fp = engine_fingerprint()
        for bad in (None,
                    {**fp, "models": [m for m in fp["models"]
                                      if m != params.model]},
                    {**fp, "catalog": "deadbeefdeadbeef"},
                    {**fp, "dpor": False}):
            reason = handshake_mismatch(params, bad)
            assert reason, f"expected a refusal for {bad!r}"
            assert "\n" not in reason

    def test_coordinator_refuses_incompatible_node(self):
        """A node presenting a stale catalog hash must be refused at
        connect with a one-line reason, never granted work."""
        coord = Coordinator(_engine_params(), hw_spec(),
                            DistParams(lease_seconds=30.0,
                                       node_wait_seconds=30.0))
        acceptor = threading.Thread(target=coord._accept_loop,
                                    daemon=True)
        acceptor.start()
        ch = legacy = None
        try:
            fp = dict(engine_fingerprint())
            fp["catalog"] = "0000000000000000"
            ch = Channel(socket.create_connection(
                (coord.host, coord.port), timeout=5.0))
            ch.send("hello", node="bad0", pid=1, proto=PROTOCOL_VERSION,
                    fp=fp)
            resp = ch.recv(timeout=5.0)
            assert resp["t"] == "refuse"
            assert "catalog" in resp["reason"]
            # A legacy hello with no fingerprint at all is refused too:
            # no evidence of compatibility is not compatibility.
            legacy = Channel(socket.create_connection(
                (coord.host, coord.port), timeout=5.0))
            legacy.send("hello", node="old0", pid=1,
                        proto=PROTOCOL_VERSION)
            resp = legacy.recv(timeout=5.0)
            assert resp["t"] == "refuse"
            with coord._lock:
                assert "bad0" not in coord._nodes
                assert "old0" not in coord._nodes
            assert coord.reporter.summary.nodes_refused == 2
        finally:
            coord._stop.set()
            try:
                coord._listener.close()
            except OSError:
                pass
            for c in (ch, legacy):
                if c is not None:
                    c.close()

    def test_refused_node_exits_with_refused_exit(self, monkeypatch):
        """`run_node` on a refusal: report the reason once and exit
        `REFUSED_EXIT` immediately — no reconnect storm."""
        import repro.engine.dist.node as node_mod
        stale = dict(engine_fingerprint())
        stale["dpor"] = False
        monkeypatch.setattr(node_mod, "engine_fingerprint", lambda: stale)
        coord = Coordinator(_engine_params(), hw_spec(),
                            DistParams(lease_seconds=30.0,
                                       node_wait_seconds=30.0))
        acceptor = threading.Thread(target=coord._accept_loop,
                                    daemon=True)
        acceptor.start()
        lines = []
        try:
            rc = run_node(coord.host, coord.port, node_id="stale0",
                          emit=lines.append)
        finally:
            coord._stop.set()
            try:
                coord._listener.close()
            except OSError:
                pass
        assert rc == REFUSED_EXIT
        assert any("refused" in line for line in lines)


class TestDistEquivalence:
    def test_two_nodes_match_serial(self):
        serial = _serial_report()
        coord = Coordinator(_engine_params(), hw_spec(),
                            DistParams(lease_seconds=5.0,
                                       node_wait_seconds=20.0))
        thread, box = _serve_async(coord)
        workers = [threading.Thread(
            target=run_node, args=(coord.host, coord.port),
            kwargs={"node_id": f"n{i}", "emit": lambda *_: None},
            daemon=True) for i in range(2)]
        for w in workers:
            w.start()
        thread.join(timeout=JOIN_TIMEOUT)
        assert "result" in box, "coordinator never settled"
        result = box["result"]
        assert_reports_equal(result.report, serial)
        assert not result.coverage.degraded
        assert result.telemetry.nodes_joined == 2

    def test_two_nodes_full_audit_match_serial(self):
        """Audit smoke: every completed shard re-executed in the
        coordinator's trusted process; a clean fleet yields zero
        findings and a byte-equal merge."""
        serial = _serial_report()
        coord = Coordinator(_engine_params(audit_fraction=1.0), hw_spec(),
                            DistParams(lease_seconds=5.0,
                                       node_wait_seconds=20.0))
        thread, box = _serve_async(coord)
        workers = [threading.Thread(
            target=run_node, args=(coord.host, coord.port),
            kwargs={"node_id": f"n{i}", "emit": lambda *_: None},
            daemon=True) for i in range(2)]
        for w in workers:
            w.start()
        thread.join(timeout=JOIN_TIMEOUT)
        assert "result" in box, "coordinator never settled"
        result = box["result"]
        assert_reports_equal(result.report, serial)
        tel = result.telemetry
        assert tel.audits_done >= 4
        assert tel.audit_divergences == 0
        assert not result.coverage.degraded

    def test_straggling_node_rescued_by_shadow_grant(self):
        """Dist hedging: one node pinned inside shard 1 by a slow-worker
        delay; once its lease runs past the adaptive deadline the other
        node gets a shadow grant under a fresh token, wins, and the
        merge stays byte-equal to serial."""
        serial = _serial_report()
        plan = FaultPlan((Fault("hedge.slow_worker", "delay", shard=1,
                                attempt=1, delay_seconds=2.5),))
        with plan:
            coord = Coordinator(
                _engine_params(hedge=True, hedge_floor=0.25,
                               hedge_factor=1.5), hw_spec(),
                DistParams(lease_seconds=10.0, node_wait_seconds=20.0,
                           tick=0.05))
            thread, box = _serve_async(coord)
            workers = [threading.Thread(
                target=run_node, args=(coord.host, coord.port),
                kwargs={"node_id": f"n{i}", "emit": lambda *_: None},
                daemon=True) for i in range(2)]
            for w in workers:
                w.start()
            thread.join(timeout=JOIN_TIMEOUT)
        assert "result" in box, "coordinator never settled"
        result = box["result"]
        assert_reports_equal(result.report, serial)
        tel = result.telemetry
        assert tel.hedges_issued >= 1
        assert tel.hedge_wins >= 1
        assert tel.leases_expired == 0

    def test_lying_node_convicted_and_quarantined(self):
        """Dist audit conviction: a node's result blob has a digit
        rotated before the CRC (framing-consistent lie).  The trusted
        re-execution convicts it, the node is refused further grants,
        the trusted result is substituted, and coverage degrades."""
        serial = _serial_report()
        plan = FaultPlan((Fault("pool.flip_result_byte", "corrupt",
                                shard=1, attempt=1),))
        with plan:
            coord = Coordinator(
                _engine_params(audit_fraction=1.0), hw_spec(),
                DistParams(lease_seconds=5.0, node_wait_seconds=20.0,
                           tick=0.05))
            thread, box = _serve_async(coord)
            workers = [threading.Thread(
                target=run_node, args=(coord.host, coord.port),
                kwargs={"node_id": f"n{i}", "emit": lambda *_: None},
                daemon=True) for i in range(2)]
            for w in workers:
                w.start()
            thread.join(timeout=JOIN_TIMEOUT)
        assert "result" in box, "coordinator never settled"
        result = box["result"]
        tel = result.telemetry
        assert tel.audit_divergences == 1
        assert tel.workers_quarantined == 1
        assert result.coverage.divergences == 1
        assert result.coverage.degraded
        repaired = result.report
        assert repaired.exhausted is False
        repaired.exhausted = serial.exhausted
        assert_reports_equal(repaired, serial)

    def test_node_sigkilled_mid_shard_merges_exactly(self):
        """The headline invariant: kill a node mid-shard; the lease
        expires, the shard requeues, and the merged report is exactly
        the serial DPOR report."""
        serial = _serial_report()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        lease_seconds = 1.0
        # Pin the victim inside shard 0's exploration so the SIGKILL
        # deterministically lands mid-shard.
        plan = FaultPlan((Fault("worker.explore", "hang",
                                shard=0, attempt=1),))
        procs = []
        try:
            with plan:
                coord = Coordinator(
                    _engine_params(), hw_spec(),
                    DistParams(lease_seconds=lease_seconds,
                               node_wait_seconds=30.0, tick=0.05))
                thread, box = _serve_async(coord)
                victim = ctx.Process(
                    target=_dist_node_main,
                    args=(coord.host, coord.port, "victim"), daemon=True)
                victim.start()
                procs.append(victim)
                # Let it lease shard 0, hang, and lose the lease.
                time.sleep(lease_seconds + 1.0)
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(timeout=5.0)
                survivor = ctx.Process(
                    target=_dist_node_main,
                    args=(coord.host, coord.port, "survivor"),
                    daemon=True)
                survivor.start()
                procs.append(survivor)
                thread.join(timeout=JOIN_TIMEOUT)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5.0)
        assert "result" in box, "coordinator never settled"
        result = box["result"]
        assert_reports_equal(result.report, serial)
        assert not result.coverage.degraded
        assert result.telemetry.leases_expired >= 1
        assert result.telemetry.nodes_lost >= 1

    def test_shard_failing_on_every_node_does_not_starve(self):
        """Regression: a shard that failed once on each of two nodes
        had both excluded; with lenient grants gated on <=1 connected
        node the shard stayed PENDING forever and serve() never
        returned.  It must be re-granted to an excluded node, succeed
        on its final attempt, and merge to the serial report."""
        serial = _serial_report()
        plan = FaultPlan((Fault("worker.explore", "raise",
                                shard=0, attempt=1),
                          Fault("worker.explore", "raise",
                                shard=0, attempt=2)))
        with plan:
            coord = Coordinator(_engine_params(), hw_spec(),
                                DistParams(lease_seconds=5.0,
                                           node_wait_seconds=20.0,
                                           tick=0.05))
            thread, box = _serve_async(coord)
            workers = [threading.Thread(
                target=run_node, args=(coord.host, coord.port),
                kwargs={"node_id": f"n{i}", "emit": lambda *_: None},
                daemon=True) for i in range(2)]
            for w in workers:
                w.start()
            thread.join(timeout=JOIN_TIMEOUT)
        assert "result" in box, \
            "coordinator wedged: exclusion starved the failing shard"
        result = box["result"]
        assert_reports_equal(result.report, serial)
        assert not result.coverage.degraded
        assert result.telemetry.retries >= 2

    def test_degraded_coverage_when_no_node_ever_joins(self):
        coord = Coordinator(_engine_params(), hw_spec(),
                            DistParams(lease_seconds=1.0,
                                       node_wait_seconds=0.4, tick=0.05))
        result = coord.serve()
        assert result.coverage.degraded
        assert result.coverage.shards_complete == 0
        # A degraded run must never claim a universal result.
        assert not result.report.exhausted

    def test_duplicate_result_is_fenced_not_double_counted(self):
        serial = _serial_report()
        plan = FaultPlan((Fault("net.send.result", "duplicate",
                                shard=1, attempt=1),))
        with plan:
            coord = Coordinator(_engine_params(), hw_spec(),
                                DistParams(lease_seconds=5.0,
                                           node_wait_seconds=20.0))
            thread, box = _serve_async(coord)
            worker = threading.Thread(
                target=run_node, args=(coord.host, coord.port),
                kwargs={"node_id": "n0", "emit": lambda *_: None},
                daemon=True)
            worker.start()
            thread.join(timeout=JOIN_TIMEOUT)
        assert "result" in box, "coordinator never settled"
        result = box["result"]
        assert_reports_equal(result.report, serial)
        assert result.telemetry.results_fenced == 1

    def test_checkpoint_resume_skips_done_shards(self, tmp_path):
        serial = _serial_report()
        checkpoint = str(tmp_path / "ckpt.jsonl")
        params = _engine_params(checkpoint_path=checkpoint)
        for _round in range(2):
            coord = Coordinator(params, hw_spec(),
                                DistParams(lease_seconds=5.0,
                                           node_wait_seconds=20.0))
            thread, box = _serve_async(coord)
            worker = threading.Thread(
                target=run_node, args=(coord.host, coord.port),
                kwargs={"node_id": "n0", "emit": lambda *_: None},
                daemon=True)
            worker.start()
            thread.join(timeout=JOIN_TIMEOUT)
            assert "result" in box
            assert_reports_equal(box["result"].report, serial)
        # Second round resumed everything; every execution is
        # attributed to the resume (pid 0), none to a node.
        tel = box["result"].telemetry
        assert tel.shards_resumed == 4
        assert tel.worker_shards == {0: 4}
