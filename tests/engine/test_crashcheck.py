"""Crash-point enumeration: the state space, and the checks' teeth."""

from __future__ import annotations

import os

import pytest

from repro.engine.crashcheck import (CrashState, WorkloadFacts,
                                     _torn_cuts, check_state,
                                     crash_states, record_workload,
                                     run_crashcheck)
from repro.engine.durable import encode_line
from repro.engine.vfs import IoOp


class TestTornCuts:
    def test_cuts_are_proper_prefixes(self):
        for n in (2, 3, 10, 100):
            cuts = _torn_cuts(n)
            assert cuts and all(0 < c < n for c in cuts)
            assert cuts == sorted(set(cuts))

    def test_single_byte_record_cannot_tear(self):
        assert _torn_cuts(1) == []


class TestCrashStates:
    def test_empty_trace_yields_only_the_clean_state(self):
        states = list(crash_states([]))
        assert [(s.applied, s.variant) for s in states] == [(0, "clean")]

    def test_append_yields_torn_prefixes(self):
        ops = [IoOp(kind="append", path="log", data=b"0123456789\n")]
        states = list(crash_states(ops))
        torn = [s for s in states if s.variant.startswith("torn@")]
        assert torn, "an 11-byte append must admit torn states"
        for s in torn:
            assert s.files["log"] == ops[0].data[:int(
                s.variant.split("@")[1])]
        final = [s for s in states if (s.applied, s.variant) == (1, "clean")]
        assert final[0].files["log"] == ops[0].data

    def test_unsynced_append_admits_a_lost_tail(self):
        ops = [IoOp(kind="append", path="log", data=b"first\n"),
               IoOp(kind="append", path="log", data=b"second\n",
                    synced=False)]
        states = list(crash_states(ops))
        lost = [s for s in states if s.variant == "unsynced-lost"]
        # The dropped fsync means a later crash can revert the file to
        # its last durable length — the second record never happened.
        assert lost and lost[-1].files["log"] == b"first\n"

    def test_replace_admits_a_pre_rename_state(self):
        ops = [IoOp(kind="replace", path="report.json", data=b"{}")]
        states = list(crash_states(ops))
        pre = [s for s in states if s.variant == "pre-rename"]
        assert pre and "report.json" not in pre[0].files
        assert any(p.endswith(".crash.tmp") for p in pre[0].files)
        done = [s for s in states if (s.applied, s.variant) == (1, "clean")]
        assert done[0].files["report.json"] == b"{}"

    def test_marks_are_not_crash_points(self):
        ops = [IoOp(kind="mark", path="", label="acked")]
        assert len(list(crash_states(ops))) == 1

    def test_distinct_digests_distinguish_contents(self):
        a = CrashState(0, "clean", {"f": b"x"})
        b = CrashState(0, "clean", {"f": b"y"})
        assert a.digest() != b.digest()
        assert a.digest() == CrashState(1, "torn@1", {"f": b"x"}).digest()


@pytest.fixture(scope="module")
def facts(tmp_path_factory) -> WorkloadFacts:
    workdir = tmp_path_factory.mktemp("crashcheck-workload")
    return record_workload(str(workdir))


class TestCheckState:
    def test_the_full_final_state_passes(self, facts, tmp_path):
        final = list(crash_states(facts.ops))[-1]
        assert check_state(final, facts, str(tmp_path)) == []

    def test_a_lost_acked_job_is_flagged(self, facts, tmp_path):
        # The crash state claims every op applied but the WAL vanished:
        # the acked submit did not survive, and the check must say so.
        final = list(crash_states(facts.ops))[-1]
        gutted = CrashState(final.applied, "clean",
                            {p: d for p, d in final.files.items()
                             if p != "wal.jsonl"})
        found = check_state(gutted, facts, str(tmp_path))
        assert any("acked job" in v and "lost" in v for v in found)

    def test_a_runaway_token_floor_is_flagged(self, facts, tmp_path):
        final = list(crash_states(facts.ops))[-1]
        job_id = next(iter(facts.final_floor))
        forged = dict(final.files)
        forged["wal.jsonl"] = final.files["wal.jsonl"] + (
            encode_line({"rec": "grant", "job": job_id, "shard": 0,
                         "token": 999, "attempt": 9, "node": "rogue"})
            + "\n").encode("utf-8")
        found = check_state(CrashState(final.applied, "clean", forged),
                            facts, str(tmp_path))
        assert any("exceeds the final floor" in v for v in found)

    def test_an_invented_corpus_entry_is_flagged(self, facts, tmp_path):
        final = list(crash_states(facts.ops))[-1]
        forged = dict(final.files)
        forged["corpus.jsonl"] = forged.get("corpus.jsonl", b"") + (
            encode_line({"kind": "race", "trace": [[0, 0]],
                         "violation": "forged", "max_steps": 100})
            + "\n").encode("utf-8")
        found = check_state(CrashState(final.applied, "clean", forged),
                            facts, str(tmp_path))
        assert any("never produced" in v for v in found)


class TestRunCrashcheck:
    def test_enumeration_is_complete_even_under_a_check_limit(self):
        report = run_crashcheck(limit=5)
        assert report.ok
        assert report.states_checked == 5
        # The acceptance floor: the enumerated space itself is >= 100
        # distinct states regardless of how many the smoke run checks.
        assert report.states_distinct >= 100
        assert report.states_total >= report.states_distinct
        assert "all invariants held" in report.summary()
