"""E8 — memory-model validation: the litmus catalogue, exhaustively.

Regenerates the substrate-soundness table: for each litmus shape, the
complete outcome set under exhaustive exploration, with the key
allowed/forbidden verdicts the paper's §2.3 semantics implies.
"""

import pytest

from repro.rmc import RLX, SC
from repro.rmc.litmus import (CATALOGUE, load_buffering, message_passing,
                              na_publication, outcomes, races,
                              store_buffering)


@pytest.mark.parametrize("name", sorted(CATALOGUE))
def test_litmus_outcomes(benchmark, report, name):
    factory = CATALOGUE[name]
    outs = benchmark.pedantic(outcomes, args=(factory,), rounds=1,
                              iterations=1)
    report(f"E8 litmus {name}",
           "\n".join(str(o) for o in sorted(outs, key=repr)))
    assert outs


def test_litmus_verdicts(benchmark, report):
    def verdicts():
        return {
            "MP weak outcome (rel/acq)":
                any(o[-1] == (1, 0) for o in outcomes(message_passing())),
            "MP weak outcome (rlx)":
                any(o[-1] == (1, 0)
                    for o in outcomes(message_passing(RLX, RLX))),
            "SB 0/0 (rlx)": (0, 0) in outcomes(store_buffering()),
            "SB 0/0 (sc)": (0, 0) in outcomes(store_buffering(SC, SC)),
            "LB 1/1": (1, 1) in outcomes(load_buffering()),
            "NA-pub races (rel/acq)": races(na_publication()) > 0,
            "NA-pub races (rlx)": races(na_publication(RLX, RLX)) > 0,
        }
    v = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    expected = {
        "MP weak outcome (rel/acq)": False,
        "MP weak outcome (rlx)": True,
        "SB 0/0 (rlx)": True,
        "SB 0/0 (sc)": False,
        "LB 1/1": False,
        "NA-pub races (rel/acq)": False,
        "NA-pub races (rlx)": True,
    }
    lines = [f"{k:<28} observed={v[k]!s:<6} expected={expected[k]}"
             for k in sorted(v)]
    report("E8 litmus verdict summary", "\n".join(lines))
    assert v == expected
