"""The `MemoryModel` interface: the machine's semantics as a parameter.

Compass's whole point is that *specifications* form a lattice of
strength; this package gives the machine-level half of that lattice an
executable home.  Historically the machine (`repro.rmc.machine`)
hard-coded one ORC11-style semantics inline; every point where model
choices actually live is now a hook on :class:`MemoryModel`:

* **mode strengthening** (`read_mode`/`write_mode`/`rmw_mode`/
  `fail_mode`/`fence_mode`) — a model may execute an access at a
  stronger mode than annotated (the SC model runs everything seq-cst,
  RA-only promotes relaxed accesses to release/acquire);
* **read visibility** (`read_choices`) — which messages a read may
  return (the coherence predicate, plus any global-order coupling);
* **view acquisition** (`absorb_read`/`absorb_rmw_read`) — what joins
  into the reader's view after a read;
* **message-view construction** (`released_view`) — the view sealed
  into a new message, per write mode;
* **SC-access handling** (`pre_access`/`post_access`) — synchronization
  through global views around an access;
* **fence rules** (`fence`);
* **scheduler coupling** (`footprint_sc`) — which operations the DPOR
  layer must treat as globally dependent under this model.

The base class implements the ORC11 default *exactly* as the machine
always did, so ``model="orc11"`` is byte-for-byte the pre-refactor
behaviour (the equivalence suite pins this).  Instances register here
by id; the ids form the strength lattice

    sc  ⊑  tso  ⊑  ra  ⊑  orc11        (stronger ⊑ weaker)

whose outcome-set inclusions are executable assertions in
`repro.models.diff` (``python -m repro diffmodels``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..rmc.message import Message
from ..rmc.modes import Mode
from ..rmc.view import View


class MemoryModel:
    """One memory model: every point of the step rules that can vary.

    The base implementation *is* the ORC11 default.  Subclasses
    override only what differs; everything they leave alone stays
    provably identical to the default machine.
    """

    #: Stable identity, stamped into fingerprints and corpus records.
    id: str = "orc11"
    #: One-line human description for reports and ``--help``.
    name: str = "ORC11 default (relaxed/acquire/release/seq-cst views)"

    # ------------------------------------------------------------------
    # Mode strengthening (identity for ORC11)
    # ------------------------------------------------------------------
    def read_mode(self, mode: Mode) -> Mode:
        """The mode a plain load actually executes at."""
        return mode

    def write_mode(self, mode: Mode) -> Mode:
        """The mode a plain store actually executes at."""
        return mode

    def rmw_mode(self, mode: Mode) -> Mode:
        """The mode an RMW (CAS/FAA/XCHG) actually executes at."""
        return mode

    def fail_mode(self, mode: Mode) -> Mode:
        """The mode a failed CAS's read actually executes at."""
        return mode

    def fence_mode(self, mode: Mode) -> Mode:
        """The mode a fence actually executes at."""
        return mode

    # ------------------------------------------------------------------
    # SC-access handling
    # ------------------------------------------------------------------
    def pre_access(self, memory, th, mode: Mode) -> None:
        """Synchronize *into* the thread before an access commits."""
        if mode is Mode.SC:
            th.view = th.view.join(memory.sc_view)

    def post_access(self, memory, th, mode: Mode) -> None:
        """Publish *out of* the thread after an access committed."""
        if mode is Mode.SC:
            memory.sc_view = memory.sc_view.join(th.view)

    # ------------------------------------------------------------------
    # Read visibility and view acquisition
    # ------------------------------------------------------------------
    def read_choices(self, memory, th, loc: int,
                     mode: Mode) -> List[Message]:
        """The messages a read at ``mode`` may return (never empty)."""
        if mode is Mode.SC:
            return [memory.latest(loc)]
        return memory.visible(loc, th.view)

    def absorb_read(self, memory, th, msg: Message, mode: Mode) -> None:
        """Fold a read message into the reader's views."""
        th.view = th.view.extend(msg.loc, msg.ts)
        if mode.is_acquire:
            th.view = th.view.join(msg.view)
        elif mode is Mode.RLX:
            # Claimable later by an acquire fence (paper Section 5.2).
            th.acq_cache = th.acq_cache.join(msg.view)

    def absorb_rmw_read(self, memory, th, msg: Message, mode: Mode) -> None:
        """The read side of a successful RMW (the message view is always
        at least cached: release sequences continue through RMWs)."""
        th.view = th.view.extend(msg.loc, msg.ts)
        if mode.is_acquire:
            th.view = th.view.join(msg.view)
        else:
            th.acq_cache = th.acq_cache.join(msg.view)

    # ------------------------------------------------------------------
    # Message-view construction
    # ------------------------------------------------------------------
    def released_view(self, memory, th, loc: int, ts: int, mode: Mode,
                      carried: Optional[View]) -> View:
        """The view sealed into a new message, per write mode.

        ``carried`` is the read message's view for RMWs: release
        sequences continue through RMW chains, so an acquirer of the new
        message also synchronizes with the original release write.
        """
        if mode is Mode.NA:
            base = View({loc: ts})
        elif mode.is_release:
            base = th.view
        else:  # relaxed write: releases only the release-fence frontier
            base = th.rel_view.extend(loc, ts)
        if carried is not None:
            base = base.join(carried)
        return base.extend(loc, ts)

    # ------------------------------------------------------------------
    # Fences
    # ------------------------------------------------------------------
    def fence(self, memory, th, mode: Mode) -> None:
        if mode.is_acquire or mode is Mode.ACQ:
            th.view = th.view.join(th.acq_cache)
        if mode is Mode.SC:
            th.view = th.view.join(memory.sc_view)
            memory.sc_view = memory.sc_view.join(th.view)
        if mode.is_release or mode is Mode.REL:
            th.rel_view = th.view

    # ------------------------------------------------------------------
    # Scheduler coupling (the DPOR interface)
    # ------------------------------------------------------------------
    def footprint_sc(self, kind: str, mode: Optional[Mode]) -> bool:
        """Is this operation coupled through a *global* view under this
        model?  The DPOR layer treats two such operations as dependent
        regardless of location (`repro.rmc.dpor.independent`).

        ``kind`` is the footprint kind (``"read"``/``"write"``/
        ``"rmw"``/``"fence"``); ``mode`` is the mode the operation
        actually executes at (after strengthening).
        """
        return mode is Mode.SC

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryModel {self.id}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: The default model: what the machine always was.
DEFAULT_MODEL = "orc11"

#: Model ids ordered strongest first; ``LATTICE[i]``'s outcome sets are
#: asserted to be included in ``LATTICE[i+1]``'s by the differential
#: driver (`repro.models.diff`).
LATTICE = ("sc", "tso", "ra", "orc11")

_MODELS: Dict[str, MemoryModel] = {}


def register_model(model: MemoryModel) -> MemoryModel:
    """Register a model instance under its ``id`` (idempotent)."""
    existing = _MODELS.get(model.id)
    if existing is not None and type(existing) is not type(model):
        raise ValueError(f"memory model {model.id!r} already registered")
    _MODELS[model.id] = model
    return model


def model_ids() -> tuple:
    """Registered model ids, strongest first (lattice order, then any
    extras alphabetically)."""
    extras = sorted(set(_MODELS) - set(LATTICE))
    return tuple(m for m in LATTICE if m in _MODELS) + tuple(extras)


def get_model(model: Union[str, MemoryModel, None]) -> MemoryModel:
    """Resolve a model argument: an id, an instance, or None (default).

    Models are stateless singletons, so resolving by id is free and the
    returned instance is safely shared across machines and processes.
    """
    if model is None:
        model = DEFAULT_MODEL
    if isinstance(model, MemoryModel):
        return model
    try:
        return _MODELS[model]
    except KeyError:
        raise KeyError(
            f"unknown memory model {model!r}; registered: "
            f"{', '.join(model_ids()) or '(none)'}") from None
