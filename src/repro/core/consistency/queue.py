"""``QueueConsistent``: the paper's consistency conditions for queues.

Rules (paper Figure 2, bottom-right, and Section 3.1):

* QUEUE-TYPES    — events are enqueues and dequeues only;
* QUEUE-MATCHES  — a successful dequeue returns the value of the enqueue
  it is ``so``-matched with;
* QUEUE-INJ      — an element is dequeued at most once, and a successful
  dequeue consumes exactly one enqueue;
* QUEUE-SO-HB    — a dequeue synchronizes with (happens-after) its
  enqueue, transferring the physical view;
* QUEUE-FIFO     — for matched pairs ``(e, d)`` and ``(e', d')`` with
  ``e' lhb e``: ``(d, d') ∉ lhb`` — the dequeue of the earlier enqueue
  cannot happen-after the dequeue of the later one.  This is the paper's
  deliberately weak form (§3.1 "Weaker but flexible"): it does *not*
  force ``e'`` to be dequeued at all, because a relaxed implementation
  like the Herlihy–Wing queue may leave an hb-earlier element behind
  while extracting a later one (its dequeuer synchronizes only with the
  pair it matches).  Clients regain the strong FIFO by adding external
  synchronization (then lhb is total on dequeues and the right-hand
  disjunct is excluded), and the abstract-state styles
  (``LAT_so^abs``/``LAT_hb^abs``) impose commit-point FIFO on top of
  these conditions.
* QUEUE-EMPDEQ   — an empty dequeue ``d`` can only commit if every enqueue
  that happens-before ``d`` has already been dequeued in the graph at
  ``d``'s commit.
"""

from __future__ import annotations

from typing import List

from ..event import Deq, Enq
from ..graph import Graph
from .base import Violation, check_so_in_lhb, matching


def check_queue_consistent(graph: Graph) -> List[Violation]:
    """All QueueConsistent violations of ``graph`` (empty = consistent)."""
    violations: List[Violation] = []
    out, into = matching(graph)

    for eid, ev in sorted(graph.events.items()):
        if not isinstance(ev.kind, (Enq, Deq)):
            violations.append(Violation(
                "QUEUE-TYPES", f"e{eid} has foreign kind {ev.kind!r}"))

    # MATCHES + INJ.
    for eid, ev in sorted(graph.events.items()):
        if isinstance(ev.kind, Enq):
            if len(out.get(eid, [])) > 1:
                violations.append(Violation(
                    "QUEUE-INJ", f"enqueue e{eid} dequeued more than once: "
                    f"{out[eid]}"))
            if into.get(eid):
                violations.append(Violation(
                    "QUEUE-INJ", f"enqueue e{eid} is an so-target"))
        elif isinstance(ev.kind, Deq):
            sources = into.get(eid, [])
            if ev.kind.is_empty:
                if sources or out.get(eid):
                    violations.append(Violation(
                        "QUEUE-INJ", f"empty dequeue e{eid} has so edges"))
            else:
                if len(sources) != 1:
                    violations.append(Violation(
                        "QUEUE-INJ",
                        f"dequeue e{eid} matched with {sources} enqueues"))
                for src in sources:
                    src_ev = graph.events.get(src)
                    if src_ev is None or not isinstance(src_ev.kind, Enq):
                        violations.append(Violation(
                            "QUEUE-MATCHES",
                            f"dequeue e{eid} matched with non-enqueue e{src}"))
                    elif src_ev.kind.val != ev.kind.val:
                        violations.append(Violation(
                            "QUEUE-MATCHES",
                            f"dequeue e{eid} returned {ev.kind.val!r} but "
                            f"e{src} enqueued {src_ev.kind.val!r}"))

    violations.extend(check_so_in_lhb(graph, "QUEUE-SO-HB"))

    # FIFO (weak ordering form; see module docstring).
    enqueues = graph.of_kind(Enq)
    for a, b in sorted(graph.so):
        if a not in graph.events or b not in graph.events:
            continue
        for eprime in enqueues:
            if eprime.eid == a or not graph.lhb(eprime.eid, a):
                continue
            for dp in out.get(eprime.eid, []):
                if dp in graph.events and graph.lhb(b, dp):
                    violations.append(Violation(
                        "QUEUE-FIFO",
                        f"dequeue e{b} (of e{a}) happens before e{dp}, the "
                        f"dequeue of the earlier enqueue e{eprime.eid}"))

    # EMPDEQ.
    for ev in graph.of_kind(Deq):
        if not ev.kind.is_empty:
            continue
        for eprime in enqueues:
            if not graph.lhb(eprime.eid, ev.eid):
                continue
            witnesses = [dp for dp in out.get(eprime.eid, [])
                         if dp in graph.events
                         and graph.events[dp].commit_index < ev.commit_index]
            if not witnesses:
                violations.append(Violation(
                    "QUEUE-EMPDEQ",
                    f"empty dequeue e{ev.eid} but enqueue e{eprime.eid} "
                    f"happens-before it and is undequeued at its commit"))
    return violations
