"""Linearizable histories: the ``LAT_hb_hist`` machinery (paper §3.3).

A history is an event graph plus a *linearization* ``to``: a total order
(permutation) of the events that

* **respects** ``lhb`` (``H.lhb ⊆ to`` — weaker than classical
  linearizability, which would also require ``to ⊆ hb``), and
* **interprets**: folding the events in ``to`` order through the
  sequential semantics of the data type succeeds (``interp(to, vs)``) —
  pushes/pops behave LIFO, enqueues/dequeues FIFO, and *empty* results
  happen only on a truly empty abstract state.

Two ways to obtain ``to``:

* :func:`to_from_keys` — from a richer partial order the implementation
  exposes, e.g. the modification order of the Treiber stack's head pointer
  (the paper's §3.3 "beyond local-happens-before" trick).  This is
  deterministic and search-free.
* :func:`linearize` — a general backtracking search over ``lhb``-respecting
  interleavings, memoized on (committed-set, abstract state).  Used to
  validate the deterministic construction and for libraries that do not
  expose a richer order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .consistency.base import Violation
from .event import Deq, Enq, Pop, Push
from .graph import Graph

State = Tuple[int, ...]


class SeqSpec:
    """Sequential semantics used by ``interp``: a fold over abstract state.

    The abstract state is a tuple of event ids of the elements currently in
    the container (position 0 = next to be removed).
    """

    initial: State = ()

    def step(self, graph: Graph, state: State, eid: int) -> Optional[State]:
        """Next state, or ``None`` if the event is not enabled at ``state``."""
        raise NotImplementedError


class QueueSpec(SeqSpec):
    """FIFO semantics: enqueue at the back, dequeue from the front."""

    def step(self, graph: Graph, state: State, eid: int) -> Optional[State]:
        kind = graph.events[eid].kind
        if isinstance(kind, Enq):
            return state + (eid,)
        if isinstance(kind, Deq):
            if kind.is_empty:
                return state if not state else None
            sources = graph.so_sources(eid)
            if len(sources) != 1 or not state or state[0] != sources[0]:
                return None
            return state[1:]
        return None


class StackSpec(SeqSpec):
    """LIFO semantics: push and pop at the front."""

    def step(self, graph: Graph, state: State, eid: int) -> Optional[State]:
        kind = graph.events[eid].kind
        if isinstance(kind, Push):
            return (eid,) + state
        if isinstance(kind, Pop):
            if kind.is_empty:
                return state if not state else None
            sources = graph.so_sources(eid)
            if len(sources) != 1 or not state or state[0] != sources[0]:
                return None
            return state[1:]
        return None


SPECS: Dict[str, SeqSpec] = {"queue": QueueSpec(), "stack": StackSpec()}


def interp(graph: Graph, to: Sequence[int], kind: str) -> Optional[State]:
    """Fold ``to`` through the sequential semantics.

    Returns the final abstract state, or ``None`` if some step is invalid
    (the paper's ``interp(to, vs)`` failing to hold).
    """
    spec = SPECS[kind]
    state = spec.initial
    for eid in to:
        state = spec.step(graph, state, eid)
        if state is None:
            return None
    return state


def respects_lhb(graph: Graph, to: Sequence[int]) -> bool:
    """``H.lhb ⊆ to``: no event ordered before one of its lhb-predecessors."""
    position = {eid: i for i, eid in enumerate(to)}
    for d, ev in graph.events.items():
        for e in ev.logview:
            if e != d and position.get(e, -1) > position[d]:
                return False
    return True


def to_from_keys(keys: Dict[int, tuple]) -> List[int]:
    """Sort event ids by implementation-exposed keys (e.g. head-pointer
    modification order), producing a candidate linearization."""
    return sorted(keys, key=lambda eid: keys[eid])


def linearize(graph: Graph, kind: str,
              max_nodes: int = 2_000_000) -> Optional[List[int]]:
    """Search for a linearization: an lhb-respecting, interp-valid total
    order of all events.  Returns one, or ``None`` if none exists (or the
    memoized search exceeds ``max_nodes`` states — treated as failure)."""
    spec = SPECS[kind]
    events = graph.sorted_events()
    ids = [ev.eid for ev in events]
    preds = {ev.eid: frozenset(x for x in ev.logview if x != ev.eid)
             for ev in events}
    total = len(ids)
    seen = set()
    budget = [max_nodes]

    def dfs(done: frozenset, state: State, acc: List[int]) -> Optional[List[int]]:
        if len(done) == total:
            return acc
        key = (done, state)
        if key in seen:
            return None
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        seen.add(key)
        for eid in ids:
            if eid in done or not preds[eid] <= done:
                continue
            nxt = spec.step(graph, state, eid)
            if nxt is None:
                continue
            res = dfs(done | {eid}, nxt, acc + [eid])
            if res is not None:
                return res
        return None

    return dfs(frozenset(), spec.initial, [])


def check_linearizable_history(
    graph: Graph,
    kind: str,
    to: Optional[Sequence[int]] = None,
) -> List[Violation]:
    """HIST-HB-*-LINEARIZABLE: a valid linearization exists.

    With ``to`` given (e.g. from :func:`to_from_keys`) the specific order is
    validated; otherwise the search is used as an existence check.
    """
    violations: List[Violation] = []
    if to is not None:
        if sorted(to) != sorted(graph.events):
            violations.append(Violation(
                "HIST-PERM", "to is not a permutation of the history"))
            return violations
        if not respects_lhb(graph, to):
            violations.append(Violation(
                "HIST-LHB", "to does not respect lhb"))
        if interp(graph, to, kind) is None:
            violations.append(Violation(
                "HIST-INTERP", f"interp fails along to for {kind}"))
        return violations
    if linearize(graph, kind) is None:
        violations.append(Violation(
            "HIST-EXISTS", f"no lhb-respecting linearization exists "
            f"({len(graph.events)} events, kind={kind})"))
    return violations
