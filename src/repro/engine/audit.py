"""Silent-corruption screening: sampled re-execution + fingerprints.

The lease/fencing machinery defends against workers that are slow or
dead.  It has no answer for workers that are *wrong* — bit flips,
version skew, a nondeterministic environment — because a lying
executor returns a well-formed, CRC-consistent result that merges
cleanly.  Compass shards make the defense cheap: exploration is
deterministic, so any shard re-executed anywhere must produce a
byte-identical report.  The audit layer exploits that:

* :func:`report_fingerprint` — canonical hash of a shard report with
  wall-time stripped (the one legitimately nondeterministic field);
* :class:`AuditSampler` — a seeded hash draw picks which completed
  shards get re-executed (``audit_fraction`` of them, deterministically
  per ``(seed, shard)`` so reruns audit the same shards);
* the driver re-executes sampled shards in the *coordinating* process —
  the same interpreter that defines the serial baseline — and compares
  fingerprints.  A mismatch is definitive: the origin worker lied.
  The driver then emits a structured :class:`DivergenceFinding`,
  quarantines the origin (pool: recycle every worker; dist: refuse the
  node further grants), substitutes the trusted re-execution into the
  merge, and charges the event in `repro.engine.budget.Coverage` as
  degraded-not-exhausted;
* :func:`bisect_divergence` — structural descent through the two report
  documents to the minimal divergent leaf, so the finding names *what*
  diverged (one counter, one tally) instead of two opaque hashes;
* :func:`divergence_witness` / :func:`replay_divergence` — the finding
  persists as a ``kind="divergence"`` corpus entry carrying the shard
  and result-determining params; replay re-executes the shard fresh and
  confirms the trusted fingerprint, proving the recorded observation
  was the wrong one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .corpus import CorpusEntry, ReplayOutcome
from .merge import report_to_json
from .registry import ScenarioSpec, build_scenario
from .shard import Shard

#: Attempt-counter offset for audit re-executions (see
#: `repro.engine.hedge.HEDGE_ATTEMPT_BASE` for the rationale: fault
#: coordinates key on the attempt, so an injected corruption aimed at a
#: primary attempt must not re-fire inside the audit).
AUDIT_ATTEMPT_BASE = 2000

#: The structured finding kind, as surfaced in service WAL records.
RESULT_DIVERGENCE = "result-divergence"


def report_fingerprint(report) -> str:
    """Canonical content hash of a shard report, wall-time excluded.

    ``seconds`` is the only field two byte-identical explorations
    legitimately disagree on, so it is stripped before hashing; every
    other field — counts, tallies, example lists, traces — must match
    exactly between any two executions of the same shard.
    """
    data = report_to_json(report)
    data.pop("seconds", None)
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class AuditSampler:
    """Seeded selection of which completed shards to re-execute."""

    def __init__(self, fraction: float, seed: int = 0):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"audit fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.seed = seed

    def should_audit(self, shard_id: int) -> bool:
        """Deterministic per ``(seed, shard_id)`` — a resumed or repeated
        run audits exactly the same shards."""
        if self.fraction <= 0.0:
            return False
        if self.fraction >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}:audit:{shard_id}".encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.fraction


def bisect_divergence(expected: Any, observed: Any,
                      path: str = "$") -> Optional[Tuple[str, Any, Any]]:
    """Descend two JSON documents to the minimal divergent leaf.

    Returns ``(path, expected_leaf, observed_leaf)`` for the first
    divergence in canonical (sorted-key, index) order, or ``None`` if
    the documents are equal.  Containers of mismatched shape stop the
    descent at the container (that *is* the minimal statement of the
    divergence there).
    """
    if isinstance(expected, dict) and isinstance(observed, dict):
        for key in sorted(set(expected) | set(observed)):
            if key not in expected:
                return (f"{path}.{key}", None, observed[key])
            if key not in observed:
                return (f"{path}.{key}", expected[key], None)
            found = bisect_divergence(expected[key], observed[key],
                                      f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(expected, list) and isinstance(observed, list):
        if len(expected) != len(observed):
            return (f"{path}.length", len(expected), len(observed))
        for idx, (a, b) in enumerate(zip(expected, observed)):
            found = bisect_divergence(a, b, f"{path}[{idx}]")
            if found is not None:
                return found
        return None
    if expected != observed:
        return (path, expected, observed)
    return None


@dataclass
class DivergenceFinding:
    """One audited shard whose origin result was provably wrong."""

    shard_id: int
    shard: Shard
    #: Who produced the divergent result ("worker pid 1234" / node id).
    worker: str
    expected_fingerprint: str
    observed_fingerprint: str
    #: Minimal divergent leaf (from :func:`bisect_divergence`).
    path: str = ""
    expected_value: Any = None
    observed_value: Any = None
    scenario_name: str = ""

    def describe(self) -> str:
        where = f" at {self.path} ({self.expected_value!r} != " \
                f"{self.observed_value!r})" if self.path else ""
        return (f"{RESULT_DIVERGENCE}: shard {self.shard_id} from "
                f"{self.worker} diverged from trusted re-execution"
                f"{where}")

    def to_json(self) -> Dict[str, Any]:
        return {"kind": RESULT_DIVERGENCE,
                "shard": self.shard_id,
                "shard_desc": self.shard.describe(),
                "worker": self.worker,
                "expected": self.expected_fingerprint,
                "observed": self.observed_fingerprint,
                "path": self.path,
                "detail": self.describe()}


def audit_shard(scenario, spec: Optional[ScenarioSpec], shard: Shard,
                params, shard_id: int, expected_report,
                observed_fingerprint: str, worker: str) \
        -> Tuple[Any, Optional[DivergenceFinding]]:
    """Re-execute one shard in this (trusted) process and compare.

    Returns ``(trusted_report_and_entries, finding)``: the re-execution
    result either confirms the origin (``finding is None``) or convicts
    it, in which case the caller substitutes the trusted result into the
    merge and quarantines the origin.  ``expected_report`` is the report
    the origin worker delivered; ``observed_fingerprint`` its hash.
    """
    from .pool import _explore_shard  # circular at module load
    trusted = _explore_shard(scenario, spec, shard, params,
                             shard_id=shard_id,
                             attempt=AUDIT_ATTEMPT_BASE + shard_id)
    trusted_fp = report_fingerprint(trusted[0])
    if trusted_fp == observed_fingerprint:
        return trusted, None
    expected_json = report_to_json(trusted[0])
    observed_json = report_to_json(expected_report)
    expected_json.pop("seconds", None)
    observed_json.pop("seconds", None)
    leaf = bisect_divergence(expected_json, observed_json)
    finding = DivergenceFinding(
        shard_id=shard_id, shard=shard, worker=worker,
        expected_fingerprint=trusted_fp,
        observed_fingerprint=observed_fingerprint,
        scenario_name=getattr(scenario, "name", ""))
    if leaf is not None:
        finding.path, finding.expected_value, finding.observed_value = leaf
    return trusted, finding


def divergence_witness(finding: DivergenceFinding,
                       spec: Optional[ScenarioSpec],
                       params) -> CorpusEntry:
    """The finding as a replayable ``kind="divergence"`` corpus entry.

    Carries the shard and every result-determining parameter, so any
    process, any day, can re-execute the shard and confirm the trusted
    fingerprint (`replay_divergence`).
    """
    return CorpusEntry(
        kind="divergence", trace=[], violation=finding.describe(),
        scenario_name=finding.scenario_name, spec=spec,
        max_steps=params.max_steps, model=params.model,
        shard=finding.shard, params=params.fingerprint_json(),
        expected_fingerprint=finding.expected_fingerprint,
        observed_fingerprint=finding.observed_fingerprint,
        divergence_path=finding.path)


def params_from_fingerprint(data: Dict[str, Any]):
    """Rebuild result-determining `EngineParams` from a witness entry."""
    from ..core.spec_styles import SpecStyle
    from .pool import EngineParams
    return EngineParams(
        styles=tuple(SpecStyle[name] for name in data["styles"]),
        exhaustive=data["exhaustive"], runs=data["runs"],
        seed=data["seed"], max_steps=data["max_steps"],
        max_executions=data["max_executions"], dpor=data["dpor"],
        model=data.get("model", "orc11"))


def replay_divergence(entry: CorpusEntry,
                      scenario=None) -> ReplayOutcome:
    """Re-execute a divergence witness's shard and confirm the verdict.

    Reproduction means: a fresh trusted execution of the recorded shard
    matches the *expected* fingerprint (the deterministic truth) while
    the recorded *observed* fingerprint differs — i.e. the original
    divergent result really was the outlier.
    """
    from .pool import _explore_shard  # circular at module load
    if entry.shard is None or entry.params is None:
        return ReplayOutcome(entry, False,
                             "divergence entry missing its shard or "
                             "params; cannot re-execute")
    if scenario is None:
        if entry.spec is None:
            return ReplayOutcome(entry, False,
                                 "entry has no scenario spec; pass the "
                                 "scenario explicitly")
        scenario = build_scenario(entry.spec)
    params = params_from_fingerprint(entry.params)
    report, _entries = _explore_shard(scenario, entry.spec, entry.shard,
                                      params)
    fresh = report_fingerprint(report)
    if fresh != entry.expected_fingerprint:
        return ReplayOutcome(
            entry, False,
            f"fresh re-execution fingerprint {fresh[:12]} does not match "
            f"the recorded trusted fingerprint "
            f"{entry.expected_fingerprint[:12]}")
    if entry.observed_fingerprint == entry.expected_fingerprint:
        return ReplayOutcome(entry, False,
                             "recorded fingerprints do not diverge")
    detail = (f"trusted fingerprint {fresh[:12]} confirmed; recorded "
              f"observation {entry.observed_fingerprint[:12]} diverges"
              + (f" at {entry.divergence_path}"
                 if entry.divergence_path else ""))
    return ReplayOutcome(entry, True, detail, [detail])


@dataclass
class AuditLog:
    """Driver-side audit bookkeeping shared by pool and dist loops."""

    sampler: AuditSampler
    audits_done: int = 0
    findings: List[DivergenceFinding] = field(default_factory=list)
    witnesses: List[CorpusEntry] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def divergences(self) -> int:
        return len(self.findings)
