"""Shared scaffolding for library consistency conditions.

A consistency condition is a predicate over an event graph (paper
Section 3.1: "library-specific consistency conditions on the partial
orders").  Checkers return a list of :class:`Violation`; the empty list
means the graph is consistent.  Each violation names the rule (using the
paper's rule names where they exist) and a human-readable diagnosis that
includes the offending event ids, so a failing check can be replayed and
inspected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph import Graph


@dataclass(frozen=True)
class Violation:
    """One failed consistency rule instance."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


def matching(graph: Graph) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
    """``so`` adjacency: (source -> targets, target -> sources)."""
    out: Dict[int, List[int]] = {}
    into: Dict[int, List[int]] = {}
    for a, b in sorted(graph.so):
        out.setdefault(a, []).append(b)
        into.setdefault(b, []).append(a)
    return out, into


def check_so_in_lhb(graph: Graph, rule: str) -> List[Violation]:
    """Every ``so`` edge must be an ``lhb`` edge with increasing commits.

    (The view transfer at the matched pair's commits is what the paper's
    specs express by handing the dequeuer the enqueuer's view.)
    """
    violations = []
    for a, b in sorted(graph.so):
        if a not in graph.events or b not in graph.events:
            continue  # reported by well-formedness
        if not graph.lhb(a, b):
            violations.append(Violation(
                rule, f"so edge e{a}→e{b} not in lhb"))
        elif graph.events[a].commit_index >= graph.events[b].commit_index:
            violations.append(Violation(
                rule, f"so edge e{a}→e{b} commits out of order"))
        if not graph.events[a].view.leq(graph.events[b].view):
            violations.append(Violation(
                rule,
                f"so edge e{a}→e{b} does not transfer the physical view"))
    return violations
