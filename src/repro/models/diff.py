"""The differential lattice checker: ``python -m repro diffmodels``.

Compass's spec lattice has a machine-level shadow: a *stronger* memory
model allows *fewer* behaviours.  For the four shipped models that is
the outcome-set inclusion chain

    outcomes(sc) ⊆ outcomes(tso) ⊆ outcomes(ra) ⊆ outcomes(orc11)

on every race-free program.  This module makes the chain an executable
check: it enumerates each scenario under every model (sleep-set DPOR,
`repro.rmc.dpor`), collects per-model *profiles* (outcome set, race
count, exhaustion), and compares adjacent lattice neighbours.  Any
delta comes back as a structured :class:`Finding`:

``inclusion-violation``
    the stronger model produced an outcome the weaker one cannot — a
    soundness bug in one of the two models.  Only asserted when the
    weaker profile is *exhausted* (otherwise the weaker set undercounts
    and the delta could be an enumeration artifact) and race-free
    (a racy program is UB under the weaker model: its behaviour set is
    ⊤ and the inclusion holds trivially).
``race-regression``
    the stronger model races where the weaker one does not.
    Strengthening only ever *adds* happens-before edges, and more hb
    means fewer races — a race that appears under the stronger model is
    anomalous.
``not-exhausted``
    informational: an enumeration hit its execution cap, so the
    inclusion for that pair was profiled but not asserted.

Scenario sources: the full litmus catalogue (`repro.rmc.litmus`) plus,
optionally, deterministic fuzz-grammar programs (`repro.fuzz`) — the
same generator the fuzz campaign uses, so the lattice check covers
library-shaped programs too, not just hand-written litmus shapes.

This module is deliberately *not* imported from ``repro.models``'s
package ``__init__``: it imports the litmus catalogue and the fuzz
grammar, which import the rmc package — CLI and tests import it
directly (``from repro.models import diff``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..rmc.dpor import explore_all_dpor
from ..rmc.litmus import CATALOGUE
from .base import LATTICE, get_model


@dataclass
class ModelProfile:
    """What one model's enumeration of one scenario produced."""

    model: str
    outcomes: FrozenSet[Tuple]
    raced: int = 0
    truncated: int = 0
    executions: int = 0
    exhausted: bool = True

    def to_json(self) -> Dict:
        return {"model": self.model,
                "outcomes": sorted(repr(o) for o in self.outcomes),
                "raced": self.raced, "truncated": self.truncated,
                "executions": self.executions, "exhausted": self.exhausted}


@dataclass
class Finding:
    """One structured delta between adjacent lattice models."""

    kind: str  # "inclusion-violation" | "race-regression" | "not-exhausted"
    scenario: str
    stronger: str
    weaker: str
    detail: str
    #: For inclusion violations: the offending outcome tuples (repr'd).
    delta: List[str] = field(default_factory=list)

    @property
    def fatal(self) -> bool:
        """Does this finding fail the lattice check?"""
        return self.kind in ("inclusion-violation", "race-regression")

    def to_json(self) -> Dict:
        return {"kind": self.kind, "scenario": self.scenario,
                "stronger": self.stronger, "weaker": self.weaker,
                "detail": self.detail, "delta": list(self.delta)}

    def line(self) -> str:
        return (f"[{self.kind}] {self.scenario}: "
                f"{self.stronger} vs {self.weaker}: {self.detail}")


@dataclass
class DiffReport:
    """The whole differential run: profiles plus findings."""

    models: Tuple[str, ...]
    scenarios: int = 0
    #: scenario name -> model id -> profile, in run order.
    profiles: Dict[str, Dict[str, ModelProfile]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every asserted inclusion held (informational findings pass)."""
        return not any(f.fatal for f in self.findings)

    def to_json(self) -> Dict:
        return {
            "models": list(self.models),
            "scenarios": self.scenarios,
            "ok": self.ok,
            "profiles": {name: {m: p.to_json() for m, p in per.items()}
                         for name, per in self.profiles.items()},
            "findings": [f.to_json() for f in self.findings],
        }


def _freeze(value):
    """Recursively hashable image of one thread's return value (fuzz
    program threads return lists of per-op results)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def profile_model(factory, model, max_steps: int = 2_000,
                  max_executions: int = 200_000) -> ModelProfile:
    """Enumerate one scenario under one model (sleep-set DPOR)."""
    mid = get_model(model).id
    seen = set()
    raced = truncated = executions = 0
    source = explore_all_dpor(factory, max_steps=max_steps,
                              max_executions=max_executions, model=mid)
    for result in source:
        executions += 1
        if result.race is not None:
            raced += 1
        elif result.truncated:
            truncated += 1
        else:
            seen.add(tuple(_freeze(result.returns[tid])
                           for tid in sorted(result.returns)))
    return ModelProfile(model=mid, outcomes=frozenset(seen), raced=raced,
                        truncated=truncated, executions=executions,
                        exhausted=executions < max_executions)


def compare_adjacent(scenario: str, stronger: ModelProfile,
                     weaker: ModelProfile) -> List[Finding]:
    """Check one adjacent lattice pair's inclusion on one scenario."""
    findings: List[Finding] = []
    if stronger.raced and not weaker.raced:
        findings.append(Finding(
            kind="race-regression", scenario=scenario,
            stronger=stronger.model, weaker=weaker.model,
            detail=(f"{stronger.model} raced {stronger.raced} time(s) but "
                    f"{weaker.model} is race-free — strengthening must not "
                    f"introduce races")))
    if weaker.raced:
        # UB under the weaker model: its behaviour set is ⊤, the
        # inclusion holds trivially; nothing to assert.
        return findings
    if not weaker.exhausted:
        findings.append(Finding(
            kind="not-exhausted", scenario=scenario,
            stronger=stronger.model, weaker=weaker.model,
            detail=(f"{weaker.model} enumeration hit its execution cap "
                    f"({weaker.executions}); inclusion profiled, not "
                    f"asserted")))
        return findings
    delta = stronger.outcomes - weaker.outcomes
    if delta:
        findings.append(Finding(
            kind="inclusion-violation", scenario=scenario,
            stronger=stronger.model, weaker=weaker.model,
            detail=(f"{len(delta)} outcome(s) allowed under "
                    f"{stronger.model} but not under {weaker.model}"),
            delta=sorted(repr(o) for o in delta)))
    return findings


def diff_scenario(name: str, factory, models: Sequence[str] = LATTICE,
                  max_steps: int = 2_000,
                  max_executions: int = 200_000
                  ) -> Tuple[Dict[str, ModelProfile], List[Finding]]:
    """Profile one scenario under every model and compare neighbours."""
    profiles = {m: profile_model(factory, m, max_steps=max_steps,
                                 max_executions=max_executions)
                for m in models}
    findings: List[Finding] = []
    for stronger, weaker in zip(models, models[1:]):
        findings.extend(
            compare_adjacent(name, profiles[stronger], profiles[weaker]))
    return profiles, findings


def _exhausts(factory, model, cap: int) -> bool:
    """Does the scenario enumerate to completion within ``cap``?"""
    n = 0
    for _ in explore_all_dpor(factory, max_steps=2_000,
                              max_executions=cap, model=model):
        n += 1
    return n < cap


def fuzz_scenarios(cases: int, seed: int,
                   probe_executions: int = 600
                   ) -> Tuple[List[Tuple[str, Callable]], int]:
    """Deterministic fuzz-grammar scenarios for the differential run.

    Returns ``(scenarios, skipped)``.  Broken libraries are excluded
    (they race by design, which the UB rule would just skip) and the
    generator bounds are kept small — but small bounds alone do not keep
    the enumeration small: a minority of generated programs still blow
    up past any practical execution budget, and a non-exhausted profile
    cannot have its inclusion *asserted*.  Each candidate is therefore
    probed under the lattice endpoints (``sc`` enumerates the most —
    strengthening defeats DPOR pruning — and ``orc11`` has the widest
    read nondeterminism); candidates that fail to exhaust within
    ``probe_executions`` are skipped and counted, never silently mixed
    in as vacuous checks.  Selection is a pure function of ``seed``.
    """
    from ..fuzz import GrammarConfig, generate_program, scenario_for
    config = GrammarConfig(max_threads=2, max_ops=2, max_libs=1,
                           include_broken=False)
    out: List[Tuple[str, Callable]] = []
    seen_digests = set()
    skipped = 0
    index = 0
    while len(out) < cases and index < 6 * cases:
        fp = generate_program(seed, index, config)
        index += 1
        if fp.op_count() == 0 or fp.digest() in seen_digests:
            continue
        seen_digests.add(fp.digest())
        scenario = scenario_for(fp)
        if not all(_exhausts(scenario.factory, m, probe_executions)
                   for m in ("sc", "orc11")):
            skipped += 1
            continue
        out.append((f"fuzz[{fp.digest()}]", scenario.factory))
    return out, skipped


def run_diff(models: Sequence[str] = LATTICE,
             fuzz_cases: int = 0, seed: int = 0,
             max_steps: int = 2_000, max_executions: int = 200_000,
             emit: Optional[Callable[[str], None]] = None) -> DiffReport:
    """Run the litmus catalogue (plus optional fuzzed scenarios) across
    ``models`` and collect every lattice finding."""
    models = tuple(get_model(m).id for m in models)
    report = DiffReport(models=models)
    scenarios: List[Tuple[str, Callable]] = list(CATALOGUE.items())
    if fuzz_cases:
        fuzzed, skipped = fuzz_scenarios(fuzz_cases, seed)
        scenarios.extend(fuzzed)
        if emit is not None and skipped:
            emit(f"[diffmodels] skipped {skipped} fuzz candidate(s) whose "
                 f"enumeration would not exhaust (inclusion unassertable)")
    for name, factory in scenarios:
        profiles, findings = diff_scenario(
            name, factory, models=models, max_steps=max_steps,
            max_executions=max_executions)
        report.scenarios += 1
        report.profiles[name] = profiles
        report.findings.extend(findings)
        if emit is not None:
            counts = " ".join(f"{m}={len(profiles[m].outcomes)}"
                              for m in models)
            status = "" if not findings else \
                " " + ",".join(f.kind for f in findings)
            emit(f"[diffmodels] {name}: {counts}{status}")
    return report
