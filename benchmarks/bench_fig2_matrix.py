"""E2 — Figure 2's spec ladder as a measured satisfaction matrix.

Regenerates the paper's satisfiability claims: which implementation
satisfies which spec style, over random workloads plus a tiny exhaustive
pass.  Expected shape (§2–§3): strongly synchronized implementations pass
everything; the relaxed Herlihy–Wing queue passes ``LAT_hb`` but fails the
abstract-state styles; the broken all-relaxed mutant is caught (races).
"""

import pytest

from repro.checking import run_matrix
from repro.core import SpecStyle


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(runs=60)


def test_matrix(benchmark, report, matrix):
    rep = benchmark.pedantic(run_matrix, kwargs=dict(
        runs=25, exhaustive_small=False), rounds=1, iterations=1)
    assert rep.rows
    report("Fig.2 spec-satisfaction matrix (impl x style)", matrix.render())

    rows = matrix.rows
    # The paper's shape assertions.
    for name in ("locked-queue", "ms-queue/sc", "ms-queue/ra"):
        assert all(c.ok for c in rows[name].values()), name
    assert rows["hw-queue/rlx"][SpecStyle.LAT_HB].ok
    assert not rows["hw-queue/rlx"][SpecStyle.LAT_HB_ABS].ok
    assert not rows["hw-queue/rlx"][SpecStyle.LAT_SO_ABS].ok
    # The Vyukov MPMC queue sits in the same §3.2 class as Herlihy–Wing.
    assert rows["vyukov-queue/rlx"][SpecStyle.LAT_HB].ok
    assert not rows["vyukov-queue/rlx"][SpecStyle.LAT_HB_ABS].ok
    assert any(c.raced for c in rows["ms-queue/broken-rlx"].values())
    assert all(c.ok for c in rows["treiber/rel-acq"].values())
    assert all(c.ok for c in rows["elim-stack"].values())
