#!/usr/bin/env python3
"""Quickstart: run a relaxed-memory program, inspect its event graph,
check it against a Compass spec style.

This walks the full public API in one page:

1. write thread coroutines that yield memory operations;
2. run them on the view-based ORC11-style simulator;
3. use a library (the release/acquire Michael–Scott queue) and pull out
   its event graph — events carry physical views and logical views, and
   ``so``/``lhb`` are derived exactly as in the paper;
4. check the graph against the spec-style ladder;
5. explore the execution space exhaustively and replay a trace.
"""

from repro.core import EMPTY, SpecStyle, check_style
from repro.libs import MSQueue, RELACQ
from repro.rmc import (ACQ, REL, RLX, Load, Program, RandomDecider, Store,
                       explore_all, replay)


def main() -> None:
    # ------------------------------------------------------------------
    # 1+2. A bare message-passing program on the simulator.
    # ------------------------------------------------------------------
    def setup(mem):
        return {"data": mem.alloc("data", 0), "flag": mem.alloc("flag", 0)}

    def producer(env):
        yield Store(env["data"], 42, RLX)
        yield Store(env["flag"], 1, REL)   # release: publishes data

    def consumer(env):
        while (yield Load(env["flag"], ACQ)) == 0:
            pass
        return (yield Load(env["data"], RLX))

    result = Program(setup, [producer, consumer]).run(RandomDecider(0))
    print(f"bare MP: consumer read data={result.returns[1]} "
          f"(steps={result.steps}, race={result.race})")

    # ------------------------------------------------------------------
    # 3. The same pattern through a verified-style library.
    # ------------------------------------------------------------------
    def q_setup(mem):
        return {"q": MSQueue.setup(mem, "q", RELACQ)}

    def q_producer(env):
        yield from env["q"].enqueue("hello")
        yield from env["q"].enqueue("world")

    def q_consumer(env):
        got = []
        while len(got) < 2:
            v = yield from env["q"].dequeue()
            if v is not EMPTY:
                got.append(v)
        return got

    result = Program(q_setup, [q_producer, q_consumer]).run(RandomDecider(1))
    print(f"queue MP: consumer got {result.returns[1]}")

    graph = result.env["q"].graph()
    print(f"event graph: {len(graph.events)} events, so={sorted(graph.so)}")
    for ev in graph.sorted_events():
        print(f"  e{ev.eid}: {ev.kind!r} by t{ev.thread} "
              f"@commit {ev.commit_index}, lhb-preds="
              f"{sorted(ev.logview - {ev.eid})}")

    # ------------------------------------------------------------------
    # 4. Check the graph against the spec ladder.
    # ------------------------------------------------------------------
    for style in (SpecStyle.LAT_SO_ABS, SpecStyle.LAT_HB_ABS,
                  SpecStyle.LAT_HB, SpecStyle.LAT_HB_HIST):
        res = check_style(graph, "queue", style)
        print(f"  {style}: {'consistent' if res.ok else res.violations}")

    # ------------------------------------------------------------------
    # 5. Exhaustive exploration + counterexample replay.
    # ------------------------------------------------------------------
    def tiny_factory():
        def t_setup(mem):
            return {"q": MSQueue.setup(mem, "q", RELACQ)}

        def enq(env):
            yield from env["q"].enqueue(7)

        def deq(env):
            return (yield from env["q"].try_dequeue())
        return Program(t_setup, [enq, deq])

    outcomes = {}
    last = None
    for r in explore_all(tiny_factory, max_steps=500):
        outcomes[repr(r.returns[1])] = outcomes.get(repr(r.returns[1]), 0) + 1
        last = r
    print(f"exhaustive tiny enq||deq: outcome counts = {outcomes}")
    again = replay(tiny_factory, last.trace)
    print(f"replayed last trace: dequeue returned {again.returns[1]!r}")


if __name__ == "__main__":
    main()
