"""Spinlock, coarse locked containers, and sequential references."""

import pytest

from repro.core import EMPTY, SpecStyle, check_style
from repro.libs import (LockedQueue, LockedStack, SeqQueue, SeqStack,
                        Spinlock)
from repro.rmc import (NA, Load, Program, RandomDecider, Store,
                       explore_all, explore_random)


class TestSpinlock:
    def test_mutual_exclusion_protects_na_data(self):
        def setup(mem):
            return {"lock": Spinlock.setup(mem), "d": mem.alloc("d", 0)}

        def t(env):
            yield from env["lock"].acquire()
            v = yield Load(env["d"], NA)
            yield Store(env["d"], v + 1, NA)
            yield from env["lock"].release()
        for r in explore_random(lambda: Program(setup, [t, t, t]),
                                runs=200, seed=1):
            assert r.ok, r.race
            assert r.memory.value(r.env["d"]) == 3

    def test_exhaustive_two_threads(self):
        def setup(mem):
            return {"lock": Spinlock.setup(mem), "d": mem.alloc("d", 0)}

        def t(env):
            yield from env["lock"].acquire()
            v = yield Load(env["d"], NA)
            yield Store(env["d"], v + 1, NA)
            yield from env["lock"].release()
        complete = 0
        for r in explore_all(lambda: Program(setup, [t, t]), max_steps=80,
                             max_executions=15_000):
            assert r.race is None
            if r.ok:
                complete += 1
                assert r.memory.value(r.env["d"]) == 2
        assert complete > 0

    def test_try_acquire(self):
        def setup(mem):
            return {"lock": Spinlock.setup(mem)}

        def t(env):
            a = yield from env["lock"].try_acquire()
            b = yield from env["lock"].try_acquire()
            return (a, b)
        r = Program(setup, [t]).run(RandomDecider(0))
        assert r.returns[0] == (True, False)


def locked_queue_prog(threads):
    def setup(mem):
        return {"lib": LockedQueue.setup(mem, "q")}
    return lambda: Program(setup, threads)


class TestLockedQueue:
    def test_fifo_sequential(self):
        def t(env):
            yield from env["lib"].enqueue(1)
            yield from env["lib"].enqueue(2)
            a = yield from env["lib"].dequeue()
            b = yield from env["lib"].dequeue()
            c = yield from env["lib"].dequeue()
            return (a, b, c)
        r = locked_queue_prog([t])().run(RandomDecider(0))
        assert r.returns[0] == (1, 2, EMPTY)

    def test_all_styles_hold_concurrently(self):
        def p(env):
            yield from env["lib"].enqueue(1)
            yield from env["lib"].enqueue(2)

        def c(env):
            x = yield from env["lib"].dequeue()
            y = yield from env["lib"].dequeue()
            return (x, y)
        for r in explore_random(locked_queue_prog([p, c, c]),
                                runs=200, seed=3):
            assert r.ok
            g = r.env["lib"].graph()
            for style in (SpecStyle.LAT_SO_ABS, SpecStyle.LAT_HB_ABS,
                          SpecStyle.LAT_HB, SpecStyle.LAT_HB_HIST):
                res = check_style(g, "queue", style)
                assert res.ok, (style, [str(v) for v in res.violations])

    def test_empdeq_never_violated(self):
        """Lock-protected state is always up to date: an empty dequeue
        can only happen when everything visible is consumed."""
        def p(env):
            yield from env["lib"].enqueue(1)

        def c(env):
            return (yield from env["lib"].dequeue())
        for r in explore_random(locked_queue_prog([p, c]), runs=150, seed=5):
            g = r.env["lib"].graph()
            assert check_style(g, "queue", SpecStyle.LAT_HB).ok


class TestLockedStack:
    def test_lifo_and_styles(self):
        def setup(mem):
            return {"lib": LockedStack.setup(mem, "s")}

        def p(env):
            yield from env["lib"].push(1)
            yield from env["lib"].push(2)

        def c(env):
            return (yield from env["lib"].pop())
        for r in explore_random(lambda: Program(setup, [p, c, c]),
                                runs=150, seed=7):
            assert r.ok
            g = r.env["lib"].graph()
            res = check_style(g, "stack", SpecStyle.LAT_HB_HIST)
            assert res.ok, [str(v) for v in res.violations]


class TestSeqRefs:
    def test_seq_queue(self):
        def setup(mem):
            return {"q": SeqQueue.setup(mem, "q")}

        def t(env):
            yield from env["q"].enqueue(1)
            yield from env["q"].enqueue(2)
            a = yield from env["q"].dequeue()
            e = yield from env["q"].try_dequeue()
            b = yield from env["q"].dequeue()
            return (a, e, b)
        r = Program(setup, [t]).run(RandomDecider(0))
        assert r.returns[0] == (1, 2, EMPTY)
        g = r.env["q"].graph()
        assert check_style(g, "queue", SpecStyle.SEQ).ok

    def test_seq_stack_strict_empty(self):
        def setup(mem):
            return {"s": SeqStack.setup(mem, "s")}

        def t(env):
            yield from env["s"].push(1)
            a = yield from env["s"].pop()
            e = yield from env["s"].pop()
            return (a, e)
        r = Program(setup, [t]).run(RandomDecider(0))
        assert r.returns[0] == (1, EMPTY)
        g = r.env["s"].graph()
        assert check_style(g, "stack", SpecStyle.SEQ).ok


class TestTicketLock:
    def test_mutual_exclusion_and_fairness(self):
        from repro.libs import TicketLock
        from repro.rmc import NA, Load, Store, Program, explore_random

        def setup(mem):
            return {"lock": TicketLock.setup(mem), "d": mem.alloc("d", 0),
                    "entries": []}

        def t(env):
            ticket = yield from env["lock"].acquire()
            v = yield Load(env["d"], NA)
            env["entries"].append(ticket)
            yield Store(env["d"], v + 1, NA)
            yield from env["lock"].release(ticket)
            return ticket

        for r in explore_random(lambda: Program(setup, [t, t, t]),
                                runs=150, seed=9):
            assert r.ok, r.race
            assert r.memory.value(r.env["d"]) == 3
            # FIFO admission: critical sections run in ticket order.
            assert r.env["entries"] == sorted(r.env["entries"])
            assert sorted(r.returns.values()) == [0, 1, 2]

    def test_exhaustive_two_threads(self):
        from repro.libs import TicketLock
        from repro.rmc import NA, Load, Store, Program, explore_all

        def setup(mem):
            return {"lock": TicketLock.setup(mem), "d": mem.alloc("d", 0)}

        def t(env):
            ticket = yield from env["lock"].acquire()
            v = yield Load(env["d"], NA)
            yield Store(env["d"], v + 1, NA)
            yield from env["lock"].release(ticket)

        complete = 0
        for r in explore_all(lambda: Program(setup, [t, t]), max_steps=80,
                             max_executions=15_000):
            assert r.race is None
            if r.ok:
                complete += 1
                assert r.memory.value(r.env["d"]) == 2
        assert complete > 0
