"""Work sharding: the decision tree (or seed range) as resumable units.

Stateless replay-based exploration is embarrassingly parallel because a
decision-tree *prefix* fully identifies a subtree: `explore_all` with
``prefix=p`` enumerates exactly the executions whose decision traces
extend ``p``, in DFS order.  Sharding is therefore:

* **exhaustive mode** — probe the tree breadth-first (one replayed
  execution per expanded node) until enough disjoint subtree roots exist,
  then hand each root to a worker.  Lexicographically sorted prefixes
  concatenate to exactly the serial DFS enumeration, so merged reports
  match the serial run byte for byte;
* **randomized mode** — split the seed range ``[seed, seed+runs)`` into
  contiguous chunks; `explore_random` derives run ``i``'s decider from
  ``seed + i``, so chunked unions equal the serial sequence.

Probe executions are replayed again inside their shard (a worker starts
at its subtree's leftmost leaf); that duplication is one execution per
*internal* planned node and buys complete decoupling between planning
and workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..rmc.dpor import (DporStats, SleepSetCut, SleepSetDecider,
                        explore_all_dpor, independent)
from ..rmc.explore import ProgramFactory, explore_all, explore_random
from ..rmc.machine import ExecutionResult
from ..rmc.ops import Footprint
from ..rmc.scheduler import PrefixDecider

#: Shards to aim for per worker: enough slack that one slow subtree does
#: not serialize the tail of the run.
SHARDS_PER_WORKER = 4

#: Ceiling on planning probes (each probe is one replayed execution).
PROBE_CAP = 512


@dataclass(frozen=True)
class Shard:
    """One unit of work: a subtree root or a seed range.

    ``sleep`` is the subtree root's inherited sleep set under DPOR
    (`repro.rmc.dpor`): the pending-op footprints of threads whose step
    at the root is already covered by an earlier shard.  Empty for naive
    planning, and omitted from the JSON form when empty so pre-DPOR
    checkpoints keep their shard encoding.
    """

    kind: str  # "prefix" | "seeds"
    prefix: Tuple[int, ...] = ()
    seed: int = 0
    runs: int = 0
    sleep: Tuple[Footprint, ...] = ()

    def sort_key(self):
        return self.prefix if self.kind == "prefix" else (self.seed,)

    def describe(self) -> str:
        """Short human-readable identity for coverage accounting."""
        if self.kind == "prefix":
            return ("prefix " + ".".join(map(str, self.prefix))
                    if self.prefix else "prefix <root>")
        return f"seeds [{self.seed}, {self.seed + self.runs})"

    def to_json(self):
        if self.kind == "prefix":
            data = {"kind": "prefix", "prefix": list(self.prefix)}
            if self.sleep:
                data["sleep"] = [fp.to_json() for fp in self.sleep]
            return data
        return {"kind": "seeds", "seed": self.seed, "runs": self.runs}

    @staticmethod
    def from_json(data) -> "Shard":
        if data["kind"] == "prefix":
            return Shard(kind="prefix", prefix=tuple(data["prefix"]),
                         sleep=tuple(Footprint.from_json(fp)
                                     for fp in data.get("sleep", ())))
        return Shard(kind="seeds", seed=data["seed"], runs=data["runs"])


def plan_exhaustive_shards(
    factory: ProgramFactory,
    target: int,
    max_steps: int,
    max_split_depth: int = 12,
    probe_cap: int = PROBE_CAP,
    model=None,
) -> List[Shard]:
    """Split the decision tree into >= ``target`` disjoint subtrees
    (when the tree is big enough), by breadth-first prefix expansion.

    Invariant: at every moment ``frontier + done`` is a partition of the
    full tree, so the returned shards always cover the serial enumeration
    exactly once regardless of where expansion stops.
    """
    frontier: List[Tuple[int, ...]] = [()]
    done: List[Tuple[int, ...]] = []  # single-execution subtrees
    probes = 0
    while frontier and len(frontier) + len(done) < target \
            and probes < probe_cap:
        prefix = frontier.pop(0)  # shallowest first
        if len(prefix) >= max_split_depth:
            done.append(prefix)
            continue
        decider = PrefixDecider(prefix)
        factory().run(decider, max_steps=max_steps, model=model)
        probes += 1
        trace = decider.trace
        branch = next((i for i in range(len(prefix), len(trace))
                       if trace[i][0] > 1), None)
        if branch is None:
            # No choice left below this prefix: a one-execution subtree.
            done.append(prefix)
            continue
        stem = tuple(trace[i][1] for i in range(len(prefix), branch))
        arity = trace[branch][0]
        frontier.extend(prefix + stem + (k,) for k in range(arity))
    prefixes = sorted(done + frontier)
    return [Shard(kind="prefix", prefix=p) for p in prefixes]


def plan_exhaustive_shards_dpor(
    factory: ProgramFactory,
    target: int,
    max_steps: int,
    max_split_depth: int = 12,
    probe_cap: int = PROBE_CAP,
    model=None,
) -> Tuple[List[Shard], int]:
    """DPOR-aware counterpart of :func:`plan_exhaustive_shards`.

    Splits the *reduced* decision tree into >= ``target`` disjoint
    subtrees.  Probes descend leftmost-awake under a `SleepSetDecider`,
    and each frontier node carries the sleep set the serial DPOR
    enumeration would have on entering it — the sleep set is a pure
    function of the path, so shipping it inside the `Shard` makes the
    sharded union *exactly* the serial DPOR enumeration, prune for
    prune.

    Returns ``(shards, planner_pruned)``.  ``planner_pruned`` counts the
    asleep branches at nodes the planner pinned into shard prefixes
    (stem nodes and split nodes): those nodes are inside every child's
    prefix and are never backtracked by any shard, so the planner must
    account for their pruned branches or the merged telemetry would
    undercount the reduction.  Nodes *below* a shard root are recounted
    by the shard itself, so probes charge nothing for them.
    """
    frontier: List[Tuple[Tuple[int, ...], Tuple[Footprint, ...]]] = [((), ())]
    done: List[Tuple[Tuple[int, ...], Tuple[Footprint, ...]]] = []
    planner_pruned = 0
    probes = 0
    while frontier and len(frontier) + len(done) < target \
            and probes < probe_cap:
        prefix, sleep = frontier.pop(0)  # shallowest first
        if len(prefix) >= max_split_depth:
            done.append((prefix, sleep))
            continue
        decider = SleepSetDecider(prefix, pin=len(prefix),
                                  entry_sleep={fp.thread: fp
                                               for fp in sleep})
        try:
            factory().run(decider, max_steps=max_steps, model=model)
        except SleepSetCut:
            pass  # the whole residue is redundant; the shard recounts it
        probes += 1
        trace, fps, sleeps = (decider.trace, decider.footprints,
                              decider.entry_sleeps)
        split: Optional[int] = None
        for i in range(len(prefix), len(trace)):
            n = trace[i][0]
            f = fps[i]
            if f is None:
                if n > 1:  # read decisions: every branch is awake
                    split = i
                    break
            elif sum(1 for k in range(n)
                     if f[k].thread not in sleeps[i]) > 1:
                split = i
                break
        if split is None:
            # At most one awake branch per node below this prefix: a
            # subtree the shard enumerates (and prune-counts) alone.
            done.append((prefix, sleep))
            continue
        # Stem nodes end up inside every child prefix; charge their
        # asleep branches to the planner (exactly once, here).
        for i in range(len(prefix), split):
            if fps[i] is not None and trace[i][0] > 1:
                planner_pruned += trace[i][0] - 1
        stem = tuple(trace[i][1] for i in range(len(prefix), split))
        arity = trace[split][0]
        f = fps[split]
        if f is None:
            frontier.extend((prefix + stem + (k,), sleep_tuple(sleeps[split]))
                            for k in range(arity))
            continue
        sleep_now = dict(sleeps[split])
        for k in range(arity):
            fk = f[k]
            if fk.thread in sleep_now:
                planner_pruned += 1  # asleep at the split: pruned here
                continue
            child = {t: fu for t, fu in sleep_now.items()
                     if independent(fu, fk)}
            frontier.append((prefix + stem + (k,), sleep_tuple(child)))
            sleep_now[fk.thread] = fk
    pairs = sorted(done + frontier, key=lambda item: item[0])
    return ([Shard(kind="prefix", prefix=p, sleep=s) for p, s in pairs],
            planner_pruned)


def sleep_tuple(sleep) -> Tuple[Footprint, ...]:
    """A sleep dict/tuple as a canonical (thread-ordered) tuple."""
    if isinstance(sleep, dict):
        return tuple(sleep[t] for t in sorted(sleep))
    return tuple(sorted(sleep, key=lambda fp: fp.thread))


def plan_random_shards(runs: int, seed: int, target: int) -> List[Shard]:
    """Split ``runs`` seeded executions into ~``target`` contiguous
    seed-range chunks."""
    target = max(1, min(target, runs))
    base, extra = divmod(runs, target)
    shards = []
    offset = 0
    for i in range(target):
        count = base + (1 if i < extra else 0)
        if count == 0:
            continue
        shards.append(Shard(kind="seeds", seed=seed + offset, runs=count))
        offset += count
    return shards


def iter_shard(
    factory: ProgramFactory,
    shard: Shard,
    max_steps: int,
    max_executions: int,
    dpor: bool = False,
    stats: Optional[DporStats] = None,
    model=None,
) -> Iterator[ExecutionResult]:
    """Enumerate one shard's executions (the single-worker core loops).

    With ``dpor`` the prefix subtree is enumerated under sleep-set
    reduction rooted at the shard's inherited sleep set; skipped
    branches accumulate into ``stats``.
    """
    if shard.kind == "prefix":
        if dpor:
            yield from explore_all_dpor(factory, max_steps=max_steps,
                                        max_executions=max_executions,
                                        prefix=shard.prefix,
                                        sleep=shard.sleep, stats=stats,
                                        model=model)
        else:
            yield from explore_all(factory, max_steps=max_steps,
                                   max_executions=max_executions,
                                   prefix=shard.prefix, model=model)
    else:
        yield from explore_random(factory, runs=shard.runs, seed=shard.seed,
                                  max_steps=max_steps, model=model)
