"""`repro.rmc` — the ORC11-style view-based relaxed memory simulator.

Public surface:

* modes: ``NA, RLX, ACQ, REL, ACQ_REL, SC`` (`repro.rmc.modes.Mode`)
* operations yielded by thread coroutines: `Load`, `Store`, `Cas`,
  `Faa`, `Xchg`, `Fence`, `Alloc`, `GhostCommit`
* `Program` + `Machine.run` / `Program.run` for single executions
* `explore_all` / `explore_random` / `check_all` / `replay` for
  execution-space exploration
* `View`, `Memory`, `Message` for the Compass layer and for tests
* the litmus catalogue (`repro.rmc.litmus`) validating the model
"""

from .dpor import (DporStats, SleepSetCut, SleepSetDecider, child_sleep,
                   explore_all_dpor, independent)
from .explore import (ExplorationStats, check_all, explore_all,
                      explore_random, replay)
from .machine import CommitCtx, ExecutionResult, Machine, ThreadState, run
from .memory import Memory
from .message import Location, Message
from .modes import ACQ, ACQ_REL, NA, REL, RLX, SC, Mode
from .ops import (Alloc, Cas, Faa, Fence, Footprint, GhostCommit, Load,
                  Store, Xchg, op_footprint)
from .program import Program
from .races import RaceError, RmcError, SteppingError
from .scheduler import (Decider, FixedDecider, PrefixDecider, RandomDecider,
                        RoundRobinDecider)
from .view import EMPTY_VIEW, View, join_all

__all__ = [
    "ACQ", "ACQ_REL", "NA", "REL", "RLX", "SC", "Mode",
    "Alloc", "Cas", "Faa", "Fence", "GhostCommit", "Load", "Store", "Xchg",
    "Program", "Machine", "run", "CommitCtx", "ExecutionResult",
    "ThreadState",
    "Decider", "RandomDecider", "PrefixDecider", "FixedDecider",
    "RoundRobinDecider",
    "explore_all", "explore_random", "check_all", "replay",
    "ExplorationStats",
    "explore_all_dpor", "DporStats", "SleepSetDecider", "SleepSetCut",
    "independent", "child_sleep", "Footprint", "op_footprint",
    "Memory", "Message", "Location", "View", "EMPTY_VIEW", "join_all",
    "RaceError", "RmcError", "SteppingError",
]
