"""Heartbeats and the hung/crashed-worker watchdog logic."""

import json
import os
import signal
import time

from repro.engine.health import (Heartbeat, HeartbeatMonitor,
                                 HeartbeatWriter, pid_alive, sweep_stale)


def _write_beat(dirpath, pid, shard, ts):
    path = os.path.join(str(dirpath), f"hb-{pid}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"pid": pid, "shard": shard, "execs": 1, "ts": ts}, fh)


class _FakeProc:
    def __init__(self, alive, exitcode=None):
        self._alive = alive
        self.exitcode = exitcode

    def is_alive(self):
        return self._alive


class TestHeartbeatWriter:
    def test_beat_round_trips(self, tmp_path):
        writer = HeartbeatWriter(str(tmp_path), interval=0.0)
        writer.beat(shard=3, execs=17, force=True)
        beats = HeartbeatMonitor(str(tmp_path), timeout=5.0).read()
        me = os.getpid()
        assert beats[me].shard == 3
        assert beats[me].execs == 17
        assert beats[me].age() < 5.0

    def test_throttled_between_intervals(self, tmp_path):
        writer = HeartbeatWriter(str(tmp_path), interval=3600.0)
        writer.beat(shard=0, execs=1, force=True)
        first = os.path.getmtime(writer.path)
        writer.beat(shard=0, execs=2)  # throttled: no rewrite
        assert os.path.getmtime(writer.path) == first

    def test_torn_beat_is_skipped(self, tmp_path):
        with open(tmp_path / "hb-12345.json", "w", encoding="utf-8") as fh:
            fh.write('{"pid": 12345, "sha')
        beats = HeartbeatMonitor(str(tmp_path), timeout=5.0).read()
        assert 12345 not in beats


class TestHungDetection:
    def test_stale_beat_on_live_pid_is_hung(self, tmp_path):
        me = os.getpid()  # guaranteed alive
        _write_beat(tmp_path, me, shard=2, ts=time.time() - 60)
        monitor = HeartbeatMonitor(str(tmp_path), timeout=5.0)
        hung = monitor.hung(monitor.read(), in_flight={2},
                            worker_pids={me})
        assert [b.shard for b in hung] == [2]

    def test_fresh_beat_is_not_hung(self, tmp_path):
        me = os.getpid()
        _write_beat(tmp_path, me, shard=2, ts=time.time())
        monitor = HeartbeatMonitor(str(tmp_path), timeout=5.0)
        assert monitor.hung(monitor.read(), {2}, {me}) == []

    def test_completed_shard_is_not_hung(self, tmp_path):
        me = os.getpid()
        _write_beat(tmp_path, me, shard=2, ts=time.time() - 60)
        monitor = HeartbeatMonitor(str(tmp_path), timeout=5.0)
        assert monitor.hung(monitor.read(), in_flight={7},
                            worker_pids={me}) == []

    def test_handled_pid_is_never_flagged_twice(self, tmp_path):
        me = os.getpid()
        _write_beat(tmp_path, me, shard=2, ts=time.time() - 60)
        monitor = HeartbeatMonitor(str(tmp_path), timeout=5.0)
        monitor.ignore(me)
        assert monitor.hung(monitor.read(), {2}, {me}) == []

    def test_no_timeout_means_no_watchdog(self, tmp_path):
        me = os.getpid()
        _write_beat(tmp_path, me, shard=2, ts=time.time() - 60)
        monitor = HeartbeatMonitor(str(tmp_path), timeout=None)
        assert monitor.hung(monitor.read(), {2}, {me}) == []


class TestCrashAttribution:
    def test_crashed_worker_charged_sigterm_victims_spared(self, tmp_path):
        """Only the worker that died of something *other* than the pool's
        own SIGTERM cleanup is attributed — its shard alone is charged."""
        _write_beat(tmp_path, 101, shard=1, ts=time.time())
        _write_beat(tmp_path, 102, shard=2, ts=time.time())
        _write_beat(tmp_path, 103, shard=3, ts=time.time())
        monitor = HeartbeatMonitor(str(tmp_path), timeout=5.0)
        procs = {101: _FakeProc(alive=False, exitcode=86),  # crashed
                 102: _FakeProc(alive=False,
                                exitcode=-signal.SIGTERM),  # cleanup
                 103: _FakeProc(alive=True)}                # still fine
        crashed = monitor.crashed_worker_shards(procs, monitor.read(),
                                                in_flight={1, 2, 3})
        assert crashed == {101: 1}

    def test_attribution_is_once_per_pid(self, tmp_path):
        _write_beat(tmp_path, 101, shard=1, ts=time.time())
        monitor = HeartbeatMonitor(str(tmp_path), timeout=5.0)
        procs = {101: _FakeProc(alive=False, exitcode=9)}
        assert monitor.crashed_worker_shards(procs, monitor.read(),
                                             {1}) == {101: 1}
        assert monitor.crashed_worker_shards(procs, monitor.read(),
                                             {1}) == {}

    def test_freshest(self, tmp_path):
        monitor = HeartbeatMonitor(str(tmp_path), timeout=5.0)
        assert monitor.freshest({}) == 0.0
        beats = {1: Heartbeat(1, 0, 0, ts=10.0),
                 2: Heartbeat(2, 1, 0, ts=20.0)}
        assert monitor.freshest(beats) == 20.0


class TestPidAlive:
    def test_own_pid(self):
        assert pid_alive(os.getpid())

    def test_bogus_pid(self):
        # PID near the max is vanishingly unlikely to exist in CI.
        assert not pid_alive(2 ** 22 - 17)


class TestSweepStale:
    def test_dead_pid_beats_are_removed(self, tmp_path):
        stale_pid = 2 ** 22 - 17  # vanishingly unlikely to be alive
        _write_beat(tmp_path, stale_pid, shard=4, ts=time.time())
        removed = sweep_stale(str(tmp_path))
        assert removed == [stale_pid]
        assert not os.path.exists(tmp_path / f"hb-{stale_pid}.json")

    def test_live_pid_beats_are_kept(self, tmp_path):
        me = os.getpid()
        _write_beat(tmp_path, me, shard=1, ts=time.time())
        assert sweep_stale(str(tmp_path)) == []
        assert os.path.exists(tmp_path / f"hb-{me}.json")

    def test_junk_filenames_are_swept(self, tmp_path):
        with open(tmp_path / "hb-garbage.json", "w",
                  encoding="utf-8") as fh:
            fh.write("{}")
        # Non-beat files are none of sweep_stale's business.
        with open(tmp_path / "notes.txt", "w", encoding="utf-8") as fh:
            fh.write("keep me")
        assert sweep_stale(str(tmp_path)) == [-1]
        assert not os.path.exists(tmp_path / "hb-garbage.json")
        assert os.path.exists(tmp_path / "notes.txt")

    def test_missing_directory_is_harmless(self, tmp_path):
        assert sweep_stale(str(tmp_path / "absent")) == []

    def test_swept_beat_never_reaches_the_monitor(self, tmp_path):
        """The startup sweep is what stops a pinned REPRO_HB_DIR from
        attributing an old run's beat to a fresh worker."""
        stale_pid = 2 ** 22 - 19
        _write_beat(tmp_path, stale_pid, shard=2, ts=time.time())
        sweep_stale(str(tmp_path))
        beats = HeartbeatMonitor(str(tmp_path), timeout=5.0).read()
        assert stale_pid not in beats
