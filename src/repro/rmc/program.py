"""Programs: a setup phase plus a list of thread coroutines.

A :class:`Program` packages

* ``setup(memory) -> env``: runs before any thread starts, allocates the
  shared locations / library objects, and returns an environment handed to
  each thread;
* ``threads``: generator functions ``fn(env)`` that yield
  `repro.rmc.ops` operations.

Example (the classic message-passing litmus)::

    def setup(mem):
        return {"x": mem.alloc("x"), "f": mem.alloc("f")}

    def producer(env):
        yield Store(env["x"], 42, RLX)
        yield Store(env["f"], 1, REL)

    def consumer(env):
        while (yield Load(env["f"], ACQ)) == 0:
            pass
        return (yield Load(env["x"], RLX))

    prog = Program(setup, [producer, consumer])

Because a generator cannot be rewound, explorers take a *program factory*
when they need to run many executions; :class:`Program` itself is reusable
as long as ``setup`` and the thread functions are (plain functions are).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .machine import ExecutionResult, Machine
from .memory import Memory
from .scheduler import Decider, RandomDecider

ThreadFn = Callable[[Any], Generator]
SetupFn = Callable[[Memory], Any]


class Program:
    """A concurrent program: shared-state setup plus thread bodies."""

    def __init__(
        self,
        setup: Optional[SetupFn],
        threads: List[ThreadFn],
        name: str = "program",
    ):
        if not threads:
            raise ValueError("a program needs at least one thread")
        self.setup = setup
        self.threads = list(threads)
        self.name = name

    def run(
        self,
        decider: Optional[Decider] = None,
        max_steps: int = 100_000,
        race_detection: bool = True,
        sc_upgrade: bool = False,
        model=None,
    ) -> ExecutionResult:
        """Run one execution (random schedule by default)."""
        decider = decider if decider is not None else RandomDecider()
        return Machine(self, decider, max_steps, race_detection,
                       sc_upgrade=sc_upgrade, model=model).run()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program({self.name!r}, {len(self.threads)} threads)"
