"""Treiber stack, relaxed: release-CAS pushes, acquire-CAS pops (§3.3).

A singly linked list hanging off an atomic ``head`` pointer.  Node payload
and next pointer are written non-atomically before publication; the
release CAS on ``head`` publishes them, and a pop's acquire CAS receives
them (so the race detector certifies publication safety).

Commit points:

* push — the successful release CAS installing the node as head;
* pop — the successful acquire CAS removing the head node;
* empty pop — the read observing ``head == None``;
* ``try_push`` / ``try_pop`` — single-attempt variants used by the
  elimination stack; a lost CAS race commits *no* event and reports
  ``FAIL_RACE``.

Linearizable history (``LAT_hb^hist``): lhb alone is too sparse for a
total order (only matched pairs synchronize), but — exactly as the paper
observes — the modification order of ``head`` totally orders the commit
CASes.  Every commit hook therefore records the event's position in
``head``'s history (:attr:`TreiberStack.mo_keys`); empty pops sit at the
timestamp of the head message they read.  ``linearization()`` sorts by
these keys, yielding the ``to`` that ``interp`` validates.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.event import EMPTY, Pop, Push
from ..core.history import to_from_keys
from ..rmc.memory import Memory
from ..rmc.modes import ACQ, NA, REL, RLX
from ..rmc.ops import Alloc, Cas, Load, Store
from .base import LibraryObject, Payload


class FailRace:
    """Singleton returned by try-operations that lost their CAS race."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FAIL_RACE"


FAIL_RACE = FailRace()


class TreiberStack(LibraryObject):
    """A Treiber stack instance living in simulator memory."""

    kind = "stack"

    def __init__(self, mem: Memory, name: str):
        super().__init__(mem, name)
        self.head = mem.alloc(f"{name}.head", None)
        #: eid -> sort key in head's modification order (see module doc).
        self.mo_keys: Dict[int, Tuple] = {}
        #: node next_loc -> payload of the push that published the node.
        self._meta: Dict[int, Payload] = {}

    @classmethod
    def setup(cls, mem: Memory, name: str = "stk") -> "TreiberStack":
        return cls(mem, name)

    # ------------------------------------------------------------------
    # Single-attempt operations (building blocks; used by the elim stack)
    # ------------------------------------------------------------------
    def _try_push(self, node, payload):
        head = yield Load(self.head, RLX)
        yield Store(node[1], head, NA)

        def commit_push(ctx):
            payload.eid = self.registry.commit(ctx, Push(payload.val))
            self._meta[node[1]] = payload
            self.mo_keys[payload.eid] = (ctx.ts_written, 0, 0)

        ok, _ = yield Cas(self.head, head, node, REL, commit=commit_push)
        return ok

    def _try_pop(self, commit_empty):
        head = yield Load(self.head, ACQ, commit=commit_empty)
        if head is None:
            return EMPTY
        nxt = yield Load(head[1], NA)
        payload = self._meta[head[1]]

        def commit_pop(ctx):
            eid = self.registry.commit(ctx, Pop(payload.val),
                                       so_from=[payload.eid])
            self.mo_keys[eid] = (ctx.ts_written, 0, 0)

        ok, _ = yield Cas(self.head, head, nxt, ACQ, commit=commit_pop)
        if ok:
            out = yield Load(head[0], NA)
            return out.val
        return FAIL_RACE

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def push(self, v: Any):
        """Push ``v``; retries the CAS until it succeeds."""
        node, payload = yield from self._new_node(v)
        while True:
            ok = yield from self._try_push(node, payload)
            if ok:
                return payload.eid

    def pop(self):
        """Pop; returns a value or ``EMPTY``."""
        while True:
            r = yield from self._try_pop(self._commit_empty_hook())
            if r is not FAIL_RACE:
                return r

    def try_push(self, v: Any):
        """One attempt; ``True`` on success, ``False`` on a lost race."""
        node, payload = yield from self._new_node(v)
        ok = yield from self._try_push(node, payload)
        return bool(ok)

    def try_pop(self):
        """One attempt; a value, ``EMPTY``, or ``FAIL_RACE``."""
        return (yield from self._try_pop(self._commit_empty_hook()))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_node(self, v: Any):
        (val_loc, next_loc) = yield Alloc([0, None], "node")
        payload = Payload(v)
        yield Store(val_loc, payload, NA)
        return (val_loc, next_loc), payload

    def _commit_empty_hook(self):
        def commit_empty(ctx):
            if ctx.value_read is None:
                eid = self.registry.commit(ctx, Pop(EMPTY))
                self.mo_keys[eid] = (ctx.msg_read.ts, 1,
                                     self.registry.events[eid].commit_index)
        return commit_empty

    def linearization(self):
        """The total order ``to`` derived from head's modification order."""
        return to_from_keys(self.mo_keys)
