"""Views: per-location timestamp frontiers, the backbone of the memory model.

A *view* maps location ids to timestamps and records the writes a thread (or
a message) has observed, exactly as in the paper's Section 2.3:

    View ::= Loc -> Time

Views form a join-semilattice under pointwise maximum.  The machine only
ever *grows* a thread's view (``po`` is approximated by monotonicity) and
transfers views between threads through messages (``sw`` is approximated by
joins), so ``V1 <= V2`` is the logic-level approximation of happens-before.

Views are immutable.  Every update produces a new ``View``; this is what
makes replay-based model checking trivially safe (no aliasing bugs between
re-executions) and lets the Compass layer freeze views inside events, which
is the executable analogue of the paper's view-at modality ``@_V P``.

Components are plain integers.  Real memory locations and *ghost*
components (per-thread race-detector clocks, per-event logical-view
markers) share the same component namespace; the :class:`~repro.rmc.memory.Memory`
allocator keeps them distinct.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple


class View:
    """An immutable map from component ids to timestamps (default 0).

    Missing components are 0, which is the timestamp of every location's
    initialization message — a fresh thread therefore observes exactly the
    initial state.
    """

    __slots__ = ("_m",)

    def __init__(self, mapping: Optional[Mapping[int, int]] = None):
        if mapping:
            self._m: Dict[int, int] = {k: v for k, v in mapping.items() if v}
        else:
            self._m = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, component: int) -> int:
        """Timestamp of ``component`` in this view (0 if unobserved)."""
        return self._m.get(component, 0)

    def __getitem__(self, component: int) -> int:
        return self._m.get(component, 0)

    def components(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the non-zero (component, timestamp) pairs."""
        return iter(self._m.items())

    def is_empty(self) -> bool:
        return not self._m

    def leq(self, other: "View") -> bool:
        """Pointwise order: every observation of self is in ``other``."""
        om = other._m
        for k, v in self._m.items():
            if om.get(k, 0) < v:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, View) and self._m == other._m

    def __hash__(self) -> int:
        return hash(frozenset(self._m.items()))

    def __len__(self) -> int:
        return len(self._m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._m.items()))
        return f"View({{{inner}}})"

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def join(self, other: "View") -> "View":
        """Least upper bound (pointwise maximum) of two views."""
        a, b = self._m, other._m
        if not a:
            return other
        if not b:
            return self
        # Cheap subsumption checks keep joins allocation-free on the hot
        # path where one side already dominates the other.
        if len(a) < len(b):
            small, big, big_view = a, b, other
        else:
            small, big, big_view = b, a, self
        for k, v in small.items():
            if big.get(k, 0) < v:
                break
        else:
            return big_view
        merged = dict(big)
        for k, v in small.items():
            if merged.get(k, 0) < v:
                merged[k] = v
        out = View.__new__(View)
        out._m = merged
        return out

    def extend(self, component: int, ts: int) -> "View":
        """This view with ``component`` raised to at least ``ts``."""
        if self._m.get(component, 0) >= ts:
            return self
        merged = dict(self._m)
        merged[component] = ts
        out = View.__new__(View)
        out._m = merged
        return out

    def restrict(self, components) -> "View":
        """Project the view onto a set of components (used by tests)."""
        out = View.__new__(View)
        out._m = {k: v for k, v in self._m.items() if k in components}
        return out


#: The bottom view: observes only initialization messages.
EMPTY_VIEW = View()


def join_all(views) -> View:
    """Join an iterable of views (bottom if empty)."""
    acc = EMPTY_VIEW
    for v in views:
        acc = acc.join(v)
    return acc
