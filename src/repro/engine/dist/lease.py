"""Shards as leases: fencing tokens, exclusion, retry/backoff budgets.

A shard handed to a remote node is not *assigned*, it is **leased**: the
grant carries a deadline (renewed by the node's heartbeats) and a
**fencing token** from a single monotonic counter.  Every state change —
completion, failure, renewal — must present the token of the shard's
*current* lease; anything else is stale by construction.  That one rule
is what makes resurrection safe: a node that hangs past its deadline,
gets its shard requeued, and then wakes up and submits, presents a
fenced-off token and is rejected — the shard is never double-counted,
no matter how the partition or pause interleaves.

Requeue policy mirrors the local pool's retry budget, plus two
distribution-specific twists:

* **exclusion** — the node that failed a shard is remembered and not
  offered it again (a deterministic crasher should land on a different
  node).  Exclusion yields to liveness, never the other way round:
  when *every* live node is excluded from a shard (or the caller asks
  for a ``lenient`` grant), the shard goes back to an excluded node
  and spends a retry rather than starving the run — a shard with no
  grantable node and no budget left would otherwise stay PENDING
  forever and wedge the coordinator;
* **backoff** — a requeued shard only becomes eligible again after a
  jittered exponential delay (`repro.engine.retry`), so a fast
  grant/fail loop cannot spin the budget away in milliseconds.

A shard whose attempts exceed ``max_retries + 1`` is marked **failed**
and surfaces as truncated coverage — graceful degradation, not a crash
(`repro.engine.budget.Coverage`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..retry import jittered_backoff

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"

#: Verdicts of `LeaseTable.complete`.
ACCEPTED = "accepted"
STALE = "stale"


@dataclass
class Lease:
    """One live grant: who holds which shard under which token."""

    shard_id: int
    node_id: str
    token: int
    attempt: int
    deadline: float

    def expired(self, now: Optional[float] = None) -> bool:
        return (now if now is not None else time.time()) >= self.deadline


class LeaseTable:
    """Coordinator-side truth about every shard's lease state."""

    def __init__(self, n_shards: int, max_retries: int = 2,
                 lease_seconds: float = 10.0, backoff_base: float = 0.1,
                 backoff_cap: float = 5.0, token_floor: int = 0):
        self.n_shards = n_shards
        self.max_retries = max_retries
        self.lease_seconds = lease_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._status: Dict[int, str] = {s: PENDING for s in range(n_shards)}
        self._attempts: Dict[int, int] = {s: 0 for s in range(n_shards)}
        self._excluded: Dict[int, Set[str]] = {s: set()
                                               for s in range(n_shards)}
        self._eligible_at: Dict[int, float] = {s: 0.0
                                               for s in range(n_shards)}
        self._failure: Dict[int, str] = {}
        self._leases: Dict[int, Lease] = {}
        # ``token_floor`` lets a restarted coordinator start its counter
        # strictly above every token the previous incarnation granted
        # (the campaign service replays the floor from its WAL), so a
        # node that outlived the crash and submits under a pre-crash
        # lease is fenced STALE instead of colliding with a fresh token.
        self._next_token = token_floor + 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def status(self, shard_id: int) -> str:
        return self._status[shard_id]

    def attempts(self, shard_id: int) -> int:
        return self._attempts[shard_id]

    def lease_of(self, shard_id: int) -> Optional[Lease]:
        return self._leases.get(shard_id)

    @property
    def leases(self) -> List[Lease]:
        return list(self._leases.values())

    @property
    def done_ids(self) -> List[int]:
        return sorted(s for s, st in self._status.items() if st == DONE)

    @property
    def failed_ids(self) -> List[int]:
        return sorted(s for s, st in self._status.items() if st == FAILED)

    @property
    def settled(self) -> bool:
        """Every shard is done or permanently failed: the run can end."""
        return all(st in (DONE, FAILED) for st in self._status.values())

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def mark_done(self, shard_id: int) -> None:
        """Settle a shard without a lease (checkpoint-resumed, or won by
        a hedged shadow grant).  Popping the lease is what fences the
        loser: its later submission no longer matches a current lease
        and is rejected STALE."""
        self._status[shard_id] = DONE
        self._leases.pop(shard_id, None)

    def issue_token(self) -> int:
        """Draw a fresh fencing token without creating a lease.

        Shadow grants — hedged duplicates (`repro.engine.hedge`) —
        dispatch work *outside* the lease table: the primary lease stays
        the shard's only lease, so whichever copy submits second fails
        the exact-(node, token) check and is fenced.  Drawing from the
        single monotonic counter keeps every token unique, and the
        campaign service WAL records shadow tokens like any grant, so a
        restarted coordinator's token floor clears them too.
        """
        token = self._next_token
        self._next_token += 1
        return token

    def grant(self, node_id: str, now: float, lenient: bool = False,
              live_nodes: Optional[Set[str]] = None) -> Optional[Lease]:
        """Lease the first eligible pending shard to ``node_id``.

        Idempotent per node: a node that already holds a lease (its
        earlier grant reply was lost) gets the *same* lease back,
        renewed — never a second shard it would silently abandon.

        Exclusion is advisory, not absolute: ``lenient`` lets the node
        take any shard that excluded it, and a shard whose exclusion
        set covers all of ``live_nodes`` is granted back to an
        excluded node anyway — otherwise a shard that failed once on
        every connected node would starve PENDING forever while the
        coordinator waits for it to settle.
        """
        for lease in self._leases.values():
            if lease.node_id == node_id:
                lease.deadline = now + self.lease_seconds
                return lease
        pick: Optional[int] = None
        fallback: Optional[int] = None
        for sid in range(self.n_shards):
            if self._status[sid] != PENDING \
                    or self._eligible_at[sid] > now:
                continue
            if node_id in self._excluded[sid]:
                if fallback is None and (
                        lenient or (live_nodes is not None
                                    and live_nodes <= self._excluded[sid])):
                    fallback = sid
                continue
            pick = sid
            break
        if pick is None:
            pick = fallback
        if pick is None:
            return None
        self._attempts[pick] += 1
        lease = Lease(shard_id=pick, node_id=node_id,
                      token=self._next_token,
                      attempt=self._attempts[pick],
                      deadline=now + self.lease_seconds)
        self._next_token += 1
        self._leases[pick] = lease
        self._status[pick] = LEASED
        return lease

    def renew(self, node_id: str, shard_id: int, token: int,
              now: float) -> bool:
        """Heartbeat renewal: only the exact current lease is renewed.

        A beat naming a stale token (or a grant the coordinator has
        since requeued) renews nothing — which is what lets a lease the
        node never learned about expire honestly.
        """
        lease = self._leases.get(shard_id)
        if lease is None or lease.node_id != node_id \
                or lease.token != token:
            return False
        lease.deadline = now + self.lease_seconds
        return True

    def complete(self, shard_id: int, token: int, node_id: str) -> str:
        """Settle a shard on a submitted result; `STALE` fences off
        anything but the current lease's exact (node, token)."""
        lease = self._leases.get(shard_id)
        if lease is None or lease.node_id != node_id \
                or lease.token != token:
            return STALE
        del self._leases[shard_id]
        self._status[shard_id] = DONE
        return ACCEPTED

    def fail(self, shard_id: int, token: int, node_id: str, now: float,
             reason: str) -> bool:
        """A node reported (or produced) a failed attempt: requeue.

        Fenced the same way as `complete` — only the current lease
        holder can fail its shard.
        """
        lease = self._leases.get(shard_id)
        if lease is None or lease.node_id != node_id \
                or lease.token != token:
            return False
        self._requeue(lease, now, reason)
        return True

    def expire(self, now: float) -> List[Lease]:
        """Requeue every lease past its deadline; returns them."""
        expired = [l for l in self._leases.values() if l.expired(now)]
        for lease in expired:
            self._requeue(lease, now, "lease expired")
        return expired

    def release_node(self, node_id: str, now: float) -> List[Lease]:
        """A node is gone (connection EOF, kill): requeue its leases."""
        lost = [l for l in self._leases.values() if l.node_id == node_id]
        for lease in lost:
            self._requeue(lease, now, f"node {node_id} lost")
        return lost

    def _requeue(self, lease: Lease, now: float, reason: str) -> None:
        sid = lease.shard_id
        del self._leases[sid]
        self._excluded[sid].add(lease.node_id)
        if self._attempts[sid] > self.max_retries:
            self._status[sid] = FAILED
            self._failure[sid] = reason
            return
        self._status[sid] = PENDING
        self._eligible_at[sid] = now + jittered_backoff(
            self._attempts[sid], self.backoff_base, self.backoff_cap,
            key=f"lease-{sid}")

    def failure_reason(self, shard_id: int) -> str:
        return self._failure.get(shard_id, "")
