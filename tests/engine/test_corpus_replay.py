"""The counterexample corpus: every persisted entry replays its failure."""

import dataclasses

import pytest

from repro.core import SpecStyle
from repro.engine import (CorpusEntry, EngineParams, ScenarioSpec,
                          build_scenario, load_corpus, replay_entry,
                          run_scenario)


def run_with_corpus(spec, corpus_path, **param_overrides):
    kwargs = dict(styles=(), exhaustive=False, runs=60, seed=1,
                  max_steps=20_000, workers=1, target_shards=2,
                  corpus_path=str(corpus_path))
    kwargs.update(param_overrides)
    return run_scenario(build_scenario(spec), EngineParams(**kwargs),
                        spec=spec)


class TestStyleEntries:
    def test_style_violations_replay(self, tmp_path):
        """HW-queue fails LAT_hb^abs; every persisted trace must fail it
        again on replay in a fresh scenario rebuilt from the spec."""
        spec = ScenarioSpec("mixed-stress",
                            kwargs={"impl": "hw-queue/rlx", "threads": 3,
                                    "ops": 3, "seed": 2})
        corpus = tmp_path / "hw.corpus.jsonl"
        result = run_with_corpus(spec, corpus,
                                 styles=(SpecStyle.LAT_HB_ABS,),
                                 runs=200, seed=5)
        assert result.report.styles[SpecStyle.LAT_HB_ABS].failed > 0
        entries = load_corpus(str(corpus))
        assert entries and len(entries) == len(result.corpus_entries)
        assert all(e.kind == "style" for e in entries)
        assert all(e.style is SpecStyle.LAT_HB_ABS for e in entries)
        for entry in entries:
            out = replay_entry(entry)
            assert out.reproduced, out.detail


class TestOutcomeEntries:
    def test_outcome_failures_replay(self, tmp_path):
        """Fig. 1 MP without the flag: empty right-thread dequeues are
        persisted as outcome entries and replay to the same assertion."""
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        result = run_with_corpus(spec, corpus, runs=40,
                                 max_steps=100_000)
        rep = result.report
        assert rep.outcome_failures > 0
        # Satellite: outcome traces are stored, index-aligned and capped
        # like style counterexamples.
        assert 0 < len(rep.outcome_traces) <= 3
        assert len(rep.outcome_traces) == len(rep.outcome_examples)
        entries = load_corpus(str(corpus))
        assert entries
        assert all(e.kind == "outcome" for e in entries)
        for entry in entries:
            out = replay_entry(entry)
            assert out.reproduced, out.detail

    def test_adhoc_entry_needs_explicit_scenario(self, tmp_path):
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        result = run_with_corpus(spec, corpus, runs=40,
                                 max_steps=100_000)
        entry = dataclasses.replace(result.corpus_entries[0], spec=None)
        out = replay_entry(entry)
        assert not out.reproduced and "spec" in out.detail
        out = replay_entry(entry, scenario=build_scenario(spec))
        assert out.reproduced


class TestTolerantLoading:
    def test_torn_and_blank_lines_are_skipped_with_diagnostics(
            self, tmp_path):
        """A corpus with a line torn mid-write (kill -9 during append)
        used to crash ``load_corpus``; now the damage is skipped,
        quarantined, and counted."""
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        run_with_corpus(spec, corpus, runs=40, max_steps=100_000)
        intact = len(load_corpus(str(corpus)))
        with open(corpus, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "outcome", "trace": [[3, 0\n')  # torn
            fh.write("\n")                                     # blank
            fh.write("}}garbage{{\n")                          # rot
        entries = load_corpus(str(corpus))
        assert len(entries) == intact
        assert entries.diagnostics.corrupt == 2
        assert entries.diagnostics.rejected_path == str(corpus) + ".rejected"
        for entry in entries:
            assert replay_entry(entry).reproduced

    def test_replay_cli_reports_skipped_lines(self, tmp_path, capsys):
        from repro.__main__ import main
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        run_with_corpus(spec, corpus, runs=40, max_steps=100_000)
        n = len(load_corpus(str(corpus)))
        with open(corpus, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "outcome", "tor\n')
        assert main(["replay", str(corpus)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 corrupt corpus line(s)" in captured.err
        assert f"{n}/{n} reproduced" in captured.out


class TestEntrySerialization:
    def test_json_roundtrip(self):
        entry = CorpusEntry(
            kind="style", trace=[(3, 1), (2, 0)], violation="boom",
            style=SpecStyle.LAT_HB_ABS, scenario_name="x",
            spec=ScenarioSpec("spsc", kwargs={"impl": "ms", "n": 2}),
            max_steps=123, model="tso")
        back = CorpusEntry.from_json(entry.to_json())
        assert back.kind == entry.kind
        assert back.trace == [(3, 1), (2, 0)]
        assert back.violation == entry.violation
        assert back.style is entry.style
        assert back.spec == entry.spec
        assert back.max_steps == 123
        assert back.model == "tso"

    def test_model_defaults_for_old_corpora(self):
        """Pre-model corpus lines have no "model" key: they deserialize
        as orc11 (what they were recorded under)."""
        entry = CorpusEntry(kind="outcome", trace=[(2, 1)], violation="v")
        js = entry.to_json()
        del js["model"]
        assert CorpusEntry.from_json(js).model == "orc11"


class TestModelMismatch:
    """A trace is only meaningful under the model that produced it:
    replay refuses cross-model mixups (docs/engine.md exit-code table)."""

    def test_replay_entry_refuses_wrong_model(self, tmp_path):
        from repro.engine import ModelMismatch
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        run_with_corpus(spec, corpus, runs=40, max_steps=100_000)
        entries = load_corpus(str(corpus))
        assert entries
        assert all(e.model == "orc11" for e in entries)
        # Matching model (explicit or implicit) replays fine.
        assert replay_entry(entries[0]).reproduced
        assert replay_entry(entries[0], model="orc11").reproduced
        with pytest.raises(ModelMismatch) as exc:
            replay_entry(entries[0], model="tso")
        assert "'orc11'" in str(exc.value) and "'tso'" in str(exc.value)

    def test_replay_cli_exits_2_on_model_mismatch(self, tmp_path, capsys):
        from repro.__main__ import main
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        run_with_corpus(spec, corpus, runs=40, max_steps=100_000)
        assert main(["replay", str(corpus), "--model", "sc"]) == 2
        captured = capsys.readouterr()
        assert "refusing replay" in captured.err
        assert "'sc'" in captured.err
        # The matching model is not a mixup.
        assert main(["replay", str(corpus), "--model", "orc11"]) == 0
        capsys.readouterr()


class TestReplayCli:
    def test_replay_command_reproduces_corpus(self, tmp_path, capsys):
        from repro.__main__ import main
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        run_with_corpus(spec, corpus, runs=40, max_steps=100_000)
        n = len(load_corpus(str(corpus)))

        assert main(["replay", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert f"{n}/{n} reproduced" in out
        assert "NOT reproduced" not in out

        assert main(["replay", str(corpus), "--entry", "0"]) == 0
        out = capsys.readouterr().out
        assert "1/1 reproduced" in out

    def test_replay_command_usage_errors(self, tmp_path, capsys):
        from repro.__main__ import main
        assert main(["replay"]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["replay", str(empty)]) == 2
        spec = ScenarioSpec("mp-queue",
                            kwargs={"impl": "ms", "use_flag": False})
        corpus = tmp_path / "mp.corpus.jsonl"
        run_with_corpus(spec, corpus, runs=40, max_steps=100_000)
        n = len(load_corpus(str(corpus)))
        assert main(["replay", str(corpus), "--entry", str(n)]) == 2
        capsys.readouterr()
