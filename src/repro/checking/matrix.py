"""The spec-satisfaction matrix: implementations × spec styles (E2).

This regenerates the content of the paper's Figure 2 ladder and its §3
satisfiability claims as measured data: for each implementation and each
spec style, does every explored execution's event graph satisfy the
style's conditions?

Expected shape (the paper's claims):

* sequential reference — satisfies everything trivially (single thread),
  and is the only row where ``SEQ``'s strict-empty reading holds under
  concurrency-free workloads;
* locked / seq-cst Michael–Scott — satisfy ``LAT_hb^hist`` and below;
* release-acquire Michael–Scott — satisfies ``LAT_hb^abs`` (hence
  ``LAT_so^abs`` and ``LAT_hb``) and, on these workloads, ``LAT_hb^hist``;
* relaxed Herlihy–Wing and Vyukov MPMC — satisfy ``LAT_hb`` but **fail**
  the abstract-state styles (their commit points do not order FIFO);
* broken all-relaxed Michael–Scott — fails (races and/or lost
  synchronization): the checkers catch real weak-memory bugs;
* Treiber / elimination stack — satisfy stack ``LAT_hb``; Treiber also
  ``LAT_hb^hist`` via its head modification order.
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.spec_styles import SpecStyle
from ..libs import (BROKEN_RLX, ElimStack, HWQueue, LockedQueue, LockedStack,
                    MSQueue, RELACQ, SEQCST, SeqQueue, SeqStack, TreiberStack,
                    VyukovQueue)
from .clients import mixed_stress
from .runner import Scenario, ScenarioReport, check_scenario, single_library

QUEUE_STYLES = (SpecStyle.LAT_SO_ABS, SpecStyle.LAT_HB_ABS,
                SpecStyle.LAT_HB, SpecStyle.LAT_HB_HIST)
STACK_STYLES = (SpecStyle.LAT_SO_ABS, SpecStyle.LAT_HB_ABS,
                SpecStyle.LAT_HB, SpecStyle.LAT_HB_HIST)


@dataclass
class Implementation:
    """One row of the matrix."""

    name: str
    kind: str  # "queue" | "stack"
    build: Callable  # (mem) -> library object
    with_to: bool = False  # implementation exposes its own linearization
    single_threaded: bool = False  # sequential reference rows

    def scenario(self, threads: int, ops: int, seed: int) -> Scenario:
        factory = mixed_stress(
            self.build, self.kind,
            threads=1 if self.single_threaded else threads,
            ops_per_thread=ops, seed=seed)
        return Scenario(
            name=f"{self.name}[t{threads}xo{ops}#{seed}]",
            factory=factory,
            extract=single_library("lib", kind=self.kind,
                                   with_to=self.with_to),
        )


def default_implementations() -> List[Implementation]:
    return [
        Implementation("seq-queue", "queue",
                       lambda mem: SeqQueue.setup(mem, "q"),
                       single_threaded=True),
        Implementation("locked-queue", "queue",
                       lambda mem: LockedQueue.setup(mem, "q")),
        Implementation("ms-queue/sc", "queue",
                       lambda mem: MSQueue.setup(mem, "q", SEQCST)),
        Implementation("ms-queue/ra", "queue",
                       lambda mem: MSQueue.setup(mem, "q", RELACQ)),
        Implementation("hw-queue/rlx", "queue",
                       lambda mem: HWQueue.setup(mem, "q", capacity=32)),
        Implementation("vyukov-queue/rlx", "queue",
                       lambda mem: VyukovQueue.setup(mem, "q",
                                                     capacity=16)),
        Implementation("ms-queue/broken-rlx", "queue",
                       lambda mem: MSQueue.setup(mem, "q", BROKEN_RLX)),
        Implementation("seq-stack", "stack",
                       lambda mem: SeqStack.setup(mem, "s"),
                       single_threaded=True),
        Implementation("locked-stack", "stack",
                       lambda mem: LockedStack.setup(mem, "s")),
        Implementation("treiber/rel-acq", "stack",
                       lambda mem: TreiberStack.setup(mem, "s"),
                       with_to=True),
        Implementation("elim-stack", "stack",
                       lambda mem: ElimStack.setup(mem, "s", patience=2,
                                                   attempts=1)),
    ]


@dataclass
class MatrixCell:
    """Aggregated pass/fail of one implementation against one style."""

    checked: int = 0
    failed: int = 0
    raced: int = 0
    example: str = ""

    @property
    def verdict(self) -> str:
        if self.raced:
            return f"RACE x{self.raced}"
        if self.failed:
            return f"FAIL {self.failed}/{self.checked}"
        return f"ok {self.checked}"

    @property
    def ok(self) -> bool:
        return self.failed == 0 and self.raced == 0


@dataclass
class MatrixReport:
    rows: Dict[str, Dict[SpecStyle, MatrixCell]] = field(default_factory=dict)
    kinds: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        styles = QUEUE_STYLES
        header = ["implementation".ljust(22)] + [
            str(s).ljust(13) for s in styles]
        lines = ["  ".join(header), "-" * (24 + 15 * len(styles))]
        for name, cells in self.rows.items():
            row = [name.ljust(22)]
            for s in styles:
                cell = cells.get(s)
                row.append((cell.verdict if cell else "-").ljust(13))
            lines.append("  ".join(row))
        return "\n".join(lines)


#: Worker-side state for parallel matrix cells, installed by the pool
#: initializer (inherited by memory under the ``fork`` start method, so
#: the closure-laden Implementation rows never need pickling).
_MATRIX_WORKER: Dict = {}


def _init_matrix_worker(impls: List[Implementation], runs: int,
                        model: str = "orc11") -> None:
    _MATRIX_WORKER["impls"] = impls
    _MATRIX_WORKER["runs"] = runs
    _MATRIX_WORKER["model"] = model


def _run_matrix_cell(task: Tuple[int, int, int, int]) -> ScenarioReport:
    idx, threads, ops, seed = task
    impl = _MATRIX_WORKER["impls"][idx]
    styles = QUEUE_STYLES if impl.kind == "queue" else STACK_STYLES
    return check_scenario(impl.scenario(threads, ops, seed), styles=styles,
                          exhaustive=False, runs=_MATRIX_WORKER["runs"],
                          seed=seed * 977 + 13,
                          model=_MATRIX_WORKER.get("model", "orc11"))


def run_matrix(
    implementations: Optional[Sequence[Implementation]] = None,
    workloads: Sequence[Tuple[int, int, int]] = ((2, 3, 0), (3, 3, 1),
                                                 (3, 4, 2)),
    runs: int = 150,
    exhaustive_small: bool = True,
    workers: int = 1,
    progress: bool = False,
    dpor: Optional[bool] = None,
    model: str = "orc11",
) -> MatrixReport:
    """Fill the matrix: random workloads + one exhaustive tiny workload.

    ``workers > 1`` parallelizes twice: the randomized workload cells fan
    out across a process pool (one task per implementation × workload),
    and each tiny exhaustive pass runs through the sharded engine
    (`repro.engine`) with the same worker count.  Cell reports merge in
    a fixed order, so the rendered matrix is identical to the serial one.

    ``dpor`` threads the sleep-set reduction switch (`repro.rmc.dpor`)
    into the exhaustive passes (default: on); the randomized cells
    ignore it.  ``model`` runs every cell under a memory model from
    `repro.models` — each implementation × model pair is a fresh
    workload cell (e.g. the broken all-relaxed queue passes under
    ``model="sc"``).
    """
    impls = list(implementations) if implementations is not None \
        else default_implementations()
    report = MatrixReport()
    tasks: List[Tuple[int, int, int, int]] = []
    for idx, impl in enumerate(impls):
        styles = QUEUE_STYLES if impl.kind == "queue" else STACK_STYLES
        report.rows[impl.name] = {s: MatrixCell() for s in styles}
        report.kinds[impl.name] = impl.kind
        tasks.extend((idx, threads, ops, seed)
                     for (threads, ops, seed) in workloads)

    cell_reports: Dict[Tuple[int, int, int, int], ScenarioReport] = {}
    _init_matrix_worker(impls, runs, model)
    if workers > 1 and len(tasks) > 1 \
            and "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks)),
                                 mp_context=ctx,
                                 initializer=_init_matrix_worker,
                                 initargs=(impls, runs, model)) as pool:
            futures = {pool.submit(_run_matrix_cell, t): t for t in tasks}
            for fut in as_completed(futures):
                task = futures[fut]
                try:
                    cell_reports[task] = fut.result()
                except Exception:  # noqa: BLE001 — recompute locally
                    cell_reports[task] = _run_matrix_cell(task)
                if progress:
                    name = impls[task[0]].name
                    print(f"[matrix] cell {len(cell_reports)}/{len(tasks)}"
                          f" done ({name} t{task[1]}xo{task[2]})",
                          file=sys.stderr, flush=True)
    else:
        for task in tasks:
            cell_reports[task] = _run_matrix_cell(task)

    for task in tasks:  # fixed merge order: serial-identical matrix
        _merge(report.rows[impls[task[0]].name], cell_reports[task])

    if exhaustive_small:
        for impl in impls:
            if impl.single_threaded:
                continue
            # Tiny exhaustive pass, sharded across the same worker count.
            # The step bound cuts spin-loop subtrees (lock acquisition,
            # exchanger waits) quickly; truncated executions are not
            # checked, which is sound for the safety conditions here.
            styles = QUEUE_STYLES if impl.kind == "queue" else STACK_STYLES
            scen = impl.scenario(2, 2, 0)
            rep = check_scenario(scen, styles=styles, exhaustive=True,
                                 max_executions=4_000, max_steps=400,
                                 workers=workers, progress=progress,
                                 dpor=dpor, model=model)
            _merge(report.rows[impl.name], rep)
    return report


def _merge(cells: Dict[SpecStyle, MatrixCell], rep: ScenarioReport) -> None:
    for style, tally in rep.styles.items():
        cell = cells[style]
        cell.checked += tally.checked
        cell.failed += tally.failed
        cell.raced += rep.raced
        if tally.examples and not cell.example:
            cell.example = tally.examples[0]
