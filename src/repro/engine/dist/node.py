"""The worker node: the pool's single-shard path behind a socket.

A node is deliberately thin — connect, introduce itself, then loop
``want -> grant -> explore -> result``.  Exploration is literally the
local pool's `repro.engine.pool._explore_shard`, with two remote-shaped
differences:

* the heartbeat duck-type (`NetBeat`) streams beats *upstream* over the
  channel instead of to a local file, each naming the
  ``(shard_id, token)`` lease it renews — that is heartbeat federation,
  and it means a lease the node never learned about is never renewed;
* the result blob is the same CRC'd JSON the pool's workers return
  (including the in-flight-corruption fault site ``worker.result``), so
  the coordinator's integrity check is one shared code path.

An exploration error becomes an explicit ``fail`` message (spending a
retry on the coordinator) rather than a silent drop, so a
deterministically poisoned shard cannot loop forever.  A connection
error becomes a reconnect with jittered exponential backoff; the
coordinator requeues our lease when it notices, and any result we
submit from before the drop is fenced off by its stale token.
"""

from __future__ import annotations

import json
import os
import socket
import time
import zlib
from typing import Callable, Optional

from ..faults import flip_result_digit, mutate_blob
from ..merge import report_to_json
from ..pool import EngineParams, _explore_shard
from ..registry import ScenarioSpec, build_scenario
from ..retry import RetryPolicy
from ..shard import Shard
from .handshake import REFUSED_EXIT, engine_fingerprint
from .protocol import (MSG_BEAT, MSG_DONE, MSG_FAIL, MSG_GRANT, MSG_HELLO,
                       MSG_IDLE, MSG_REFUSE, MSG_RESULT, MSG_WANT,
                       MSG_WELCOME, PROTOCOL_VERSION, Channel)


class Refused(Exception):
    """The coordinator refused this node at handshake (version skew)."""


class NetBeat:
    """Heartbeat duck-type streaming beats upstream over the channel."""

    def __init__(self, channel: Channel, node_id: str, shard_id: int,
                 token: int, interval: float):
        self._channel = channel
        self._node_id = node_id
        self._shard_id = shard_id
        self._token = token
        self._interval = interval
        self._last = 0.0

    def beat(self, shard: int, execs: int, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last < self._interval:
            return
        self._last = now
        self._channel.send(MSG_BEAT, node=self._node_id,
                           shard_id=self._shard_id, token=self._token,
                           execs=execs)


def _default_node_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def _serve_grants(ch: Channel, node_id: str, emit: Callable) -> bool:
    """Work one connection until ``done``; True means run finished."""
    ch.send(MSG_HELLO, node=node_id, pid=os.getpid(),
            proto=PROTOCOL_VERSION, fp=engine_fingerprint())
    welcome = ch.recv(timeout=10.0)
    if welcome is not None and welcome.get("t") == MSG_REFUSE:
        raise Refused(str(welcome.get("reason", "incompatible node")))
    if welcome is None or welcome.get("t") != MSG_WELCOME:
        raise ConnectionError("no welcome from coordinator")
    spec = ScenarioSpec.from_json(welcome["spec"])
    params = EngineParams.from_wire(welcome["params"])
    heartbeat = float(welcome.get("heartbeat", 0.25))
    scenario = build_scenario(spec)
    while True:
        ch.send(MSG_WANT, node=node_id)
        # A short reply window on purpose: a grant lost in flight is
        # recovered by re-asking — the coordinator re-grants the same
        # lease idempotently — so waiting longer only adds stall.
        msg = ch.recv(timeout=2.0)
        if msg is None:
            continue  # reply lost or coordinator busy; re-ask
        mtype = msg.get("t")
        if mtype == MSG_DONE:
            return True
        if mtype == MSG_IDLE:
            time.sleep(float(msg.get("wait", 0.25)))
            continue
        if mtype != MSG_GRANT:
            continue
        sid = int(msg["shard_id"])
        token = int(msg["token"])
        attempt = int(msg.get("attempt", 1))
        shard = Shard.from_json(msg["shard"])
        emit(f"[node {node_id}] shard {sid} leased "
             f"(token {token}, attempt {attempt})")
        beat = NetBeat(ch, node_id, sid, token, heartbeat)
        try:
            report, entries = _explore_shard(scenario, spec, shard,
                                             params, shard_id=sid,
                                             attempt=attempt, beat=beat)
        except ConnectionError:
            raise  # a severed beat: reconnect, lease will be requeued
        except Exception as err:  # noqa: BLE001 — spend a retry upstream
            ch.send(MSG_FAIL, fault_shard=sid, fault_attempt=attempt,
                    node=node_id, shard_id=sid, token=token,
                    error=repr(err))
            continue
        payload = {"report": report_to_json(report),
                   "corpus": [e.to_json() for e in entries]}
        blob = json.dumps(payload, sort_keys=True)
        # The lying-executor fault site: the blob is damaged *before*
        # the CRC is taken, so the frame and the integrity check both
        # pass — only the audit layer's re-execution can catch it.
        blob = flip_result_digit("pool.flip_result_byte", blob,
                                 shard=sid, attempt=attempt)
        crc = zlib.crc32(blob.encode("utf-8"))
        # Same in-flight-damage fault site as the local pool's workers:
        # the CRC is taken first, so injected corruption must be caught
        # by the coordinator's check, never merged.
        blob = mutate_blob("worker.result", blob, shard=sid,
                           attempt=attempt)
        ch.send(MSG_RESULT, fault_shard=sid, fault_attempt=attempt,
                node=node_id, shard_id=sid, token=token, attempt=attempt,
                blob=blob, blob_crc=crc, pid=os.getpid())


def run_node(host: str, port: int, node_id: Optional[str] = None,
             max_reconnects: int = 8, reconnect_base: float = 0.2,
             emit: Callable = print) -> int:
    """Work for ``host:port`` until the coordinator says ``done``.

    Reconnects with jittered exponential backoff on any connection
    failure (including injected ``sever`` faults); gives up — exit
    code 1 — once ``max_reconnects`` consecutive attempts fail to
    reach a coordinator.  A handshake refusal (engine-fingerprint
    mismatch) exits immediately with `REFUSED_EXIT` and no reconnect:
    a refused build stays refused.
    """
    node_id = node_id or _default_node_id()
    # The same reconnect discipline the service client uses
    # (`repro.engine.retry.RECONNECT_POLICY` shape), parameterized by
    # this node's CLI knobs; attempts is a budget of *consecutive*
    # failures, reset on every successful connection.
    policy = RetryPolicy(attempts=max_reconnects + 1,
                         base=reconnect_base, cap=5.0)
    failures = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            failures += 1
            if failures > max_reconnects:
                emit(f"[node {node_id}] giving up after "
                     f"{failures - 1} reconnect attempts")
                return 1
            policy.sleep(failures, key=f"node-{node_id}")
            continue
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        failures = 0  # reachable again: the give-up budget resets
        ch = Channel(sock)
        try:
            if _serve_grants(ch, node_id, emit):
                emit(f"[node {node_id}] coordinator done; exiting")
                return 0
        except Refused as err:
            emit(f"[node {node_id}] refused by coordinator: {err}")
            return REFUSED_EXIT
        except ConnectionError as err:
            failures += 1
            emit(f"[node {node_id}] connection lost ({err}); "
                 f"reconnect {failures}/{max_reconnects}")
            if failures > max_reconnects:
                return 1
            policy.sleep(failures, key=f"node-{node_id}")
        finally:
            ch.close()
