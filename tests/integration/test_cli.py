"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_client_logic_command(capsys):
    assert main(["client-logic"]) == 0
    out = capsys.readouterr().out
    assert "LAT_so^abs" in out
    assert "SPSC(3) complete transfers" in out
    assert "(1, 2, 3)" in out


def test_mp_command(capsys):
    assert main(["mp", "--runs", "60"]) == 0
    out = capsys.readouterr().out
    assert "with flag" in out and "WITHOUT flag" in out
    for line in out.splitlines():
        if "with flag" in line and "WITHOUT" not in line:
            assert line.rstrip().endswith("right-thread empty: 0")


def test_loc_command(capsys):
    assert main(["loc"]) == 0
    out = capsys.readouterr().out
    assert "TOTAL" in out and "machine.py" in out


def test_spsc_command(capsys):
    assert main(["spsc", "--runs", "40"]) == 0
    out = capsys.readouterr().out
    assert "FIFO violations 0/40" in out


def test_elim_command(capsys):
    assert main(["elim", "--runs", "60"]) == 0
    out = capsys.readouterr().out
    assert "violations=0" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_help_covers_every_subcommand(capsys):
    from repro.__main__ import COMMANDS
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for command in COMMANDS:
        assert command in out, f"--help does not mention {command!r}"


def test_fuzz_command(capsys):
    assert main(["fuzz", "--budget", "120", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "fuzz campaign seed=7" in out
    assert "grammar coverage:" in out
    assert "0 UNEXPECTED" in out


def test_fuzz_command_finds_shrinks_and_replays(tmp_path, capsys):
    """End to end through the CLI: the broken positive control is found,
    shrunk, persisted, and the corpus replays to the same verdict."""
    path = str(tmp_path / "fuzz.jsonl")
    code = main(["fuzz", "--budget", "2000", "--seed", "42",
                 "--include-broken", "--corpus", path])
    assert code == 0  # broken-signature failures are expected, not findings
    out = capsys.readouterr().out
    assert "UNEXPECTED" in out and "0 UNEXPECTED" in out
    assert "newly persisted" in out
    assert main(["replay", path]) == 0
    replay_out = capsys.readouterr().out
    assert "NOT reproduced" not in replay_out


def test_diffmodels_command(tmp_path, capsys):
    """The differential lattice checker over the full litmus catalogue:
    sc <= tso <= ra <= orc11 must hold, and the JSON report round-trips."""
    import json
    report = str(tmp_path / "diff.json")
    assert main(["diffmodels", "--fuzz-cases", "0",
                 "--report-json", report]) == 0
    out = capsys.readouterr().out
    assert "inclusions hold" in out
    assert "sc <= tso <= ra <= orc11" in out
    with open(report, encoding="utf-8") as fh:
        data = json.load(fh)
    assert data["ok"] and data["models"] == ["sc", "tso", "ra", "orc11"]
    assert data["scenarios"] == len(data["profiles"]) > 0


def test_litmus_command_under_model(capsys):
    """--model threads through the litmus verb; under SC the SB+rlx weak
    outcome disappears."""
    assert main(["litmus", "--model", "sc"]) == 0
    out = capsys.readouterr().out
    assert "under sc" in out
    assert "SB+rlx: 3 outcomes" in out  # (0,0) forbidden at SC
    assert main(["litmus"]) == 0
    out = capsys.readouterr().out
    assert " under " not in out
    assert "SB+rlx: 4 outcomes" in out


def test_corpus_cap_flag(tmp_path, capsys):
    """--corpus-cap threads through check_scenario into the engine: each
    failing configuration persists at most N entries."""
    path = str(tmp_path / "cap.jsonl")
    assert main(["mp", "--runs", "60", "--corpus", path,
                 "--corpus-cap", "1"]) == 0
    capsys.readouterr()
    from repro.engine.corpus import load_corpus
    entries = load_corpus(path)
    assert entries, "the no-flag MP configurations should fail"
    per_scenario = {}
    for entry in entries:
        per_scenario[entry.scenario_name] = \
            per_scenario.get(entry.scenario_name, 0) + 1
    assert all(n <= 1 for n in per_scenario.values()), per_scenario
