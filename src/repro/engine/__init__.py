"""`repro.engine` — the parallel exploration engine.

Scales the stateless replay explorers (`repro.rmc.explore`) across a
process pool, with checkpoint/resume and a persistent counterexample
corpus.  The decision-tree prefix *is* a resumable work item: disjoint
prefixes are disjoint subtrees whose union is exactly the serial
enumeration, so sharded runs merge to byte-for-byte the serial report.

* shard (`repro.engine.shard`): prefix/seed-range work items;
* pool (`repro.engine.pool`): the driver — fan out, retry, merge;
* merge (`repro.engine.merge`): shard-ordered report merging + JSON;
* checkpoint (`repro.engine.checkpoint`): JSONL completed-shard log;
* corpus (`repro.engine.corpus`): replayable failing traces;
* telemetry (`repro.engine.telemetry`): executions/sec, ETA, workers;
* registry/catalog: named scenario builders (the picklable face of
  closure-built scenarios).

See ``docs/engine.md`` for the sharding strategy, file formats, and the
replay workflow.
"""

from .checkpoint import CheckpointWriter, load_completed, run_fingerprint
from .corpus import (CORPUS_CAP, CorpusEntry, CorpusSink, ReplayOutcome,
                     append_entries, load_corpus, replay_entry)
from .merge import (merge_reports, report_from_json, report_to_json,
                    tally_from_json, tally_to_json, trace_from_json)
from .pool import (EngineParams, EngineResult, ShardFailed, plan_shards,
                   run_scenario)
from .registry import (ScenarioSpec, build_scenario, register_scenario,
                       registered_builders)
from .shard import (SHARDS_PER_WORKER, Shard, iter_shard,
                    plan_exhaustive_shards, plan_random_shards)
from .telemetry import ProgressReporter, TelemetrySummary

__all__ = [
    "EngineParams", "EngineResult", "ShardFailed", "run_scenario",
    "plan_shards",
    "Shard", "iter_shard", "plan_exhaustive_shards", "plan_random_shards",
    "SHARDS_PER_WORKER",
    "merge_reports", "report_to_json", "report_from_json",
    "tally_to_json", "tally_from_json", "trace_from_json",
    "CheckpointWriter", "load_completed", "run_fingerprint",
    "CorpusEntry", "CorpusSink", "ReplayOutcome", "CORPUS_CAP",
    "append_entries", "load_corpus", "replay_entry",
    "ScenarioSpec", "register_scenario", "build_scenario",
    "registered_builders",
    "ProgressReporter", "TelemetrySummary",
]
