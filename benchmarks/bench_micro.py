"""E9 — microbenchmarks and ablations of the framework itself.

Measures the knobs DESIGN.md calls out: machine step throughput, the cost
of race detection, the cost of event/ghost instrumentation, view-join
cost, exploration throughput, the parallel engine's serial-vs-N-workers
scaling, and the sleep-set DPOR tree reduction.  Most are true
repeated-timing benchmarks (pytest-benchmark statistics apply); the
scaling and reduction rows are single timed runs recorded — via
``bench_record`` — into ``BENCH_micro.json`` at the repo root.
"""

import os
import time

import pytest

from repro.checking import mixed_stress
from repro.libs import MSQueue, RELACQ, VyukovQueue
from repro.rmc import (ACQ, REL, RLX, DporStats, Load, Program,
                       RandomDecider, Store, View, explore_all,
                       explore_all_dpor)
from repro.rmc.litmus import CATALOGUE


def counter_program(ops=200):
    def setup(mem):
        return {"x": mem.alloc("x", 0), "f": mem.alloc("f", 0)}

    def producer(env):
        for i in range(ops):
            yield Store(env["x"], i, RLX)
            yield Store(env["f"], i, REL)

    def consumer(env):
        for _ in range(ops):
            yield Load(env["f"], ACQ)
            yield Load(env["x"], RLX)
    return Program(setup, [producer, consumer])


class TestMachineThroughput:
    def test_steps_with_race_detection(self, benchmark):
        def run():
            r = counter_program().run(RandomDecider(1))
            assert r.ok
            return r.steps
        steps = benchmark(run)
        assert steps == 800

    def test_steps_without_race_detection(self, benchmark):
        def run():
            r = counter_program().run(RandomDecider(1),
                                      race_detection=False)
            return r.steps
        assert benchmark(run) == 800


class TestInstrumentationCost:
    def test_queue_workload_with_events(self, benchmark):
        factory = mixed_stress(lambda m: MSQueue.setup(m, "q", RELACQ),
                               "queue", threads=2, ops_per_thread=4, seed=1)

        def run():
            r = factory().run(RandomDecider(2))
            assert r.ok
            return len(r.env["lib"].registry.events)
        events = benchmark(run)
        assert events > 0

    def test_graph_construction(self, benchmark):
        factory = mixed_stress(lambda m: MSQueue.setup(m, "q", RELACQ),
                               "queue", threads=3, ops_per_thread=4, seed=2)
        result = factory().run(RandomDecider(3))
        lib = result.env["lib"]
        g = benchmark(lib.graph)
        assert len(g.events) > 0


class TestViewOps:
    def test_join_disjoint(self, benchmark):
        a = View({i: i for i in range(1, 40)})
        b = View({i: i for i in range(40, 80)})
        benchmark(a.join, b)

    def test_join_subsumed(self, benchmark):
        a = View({i: i for i in range(1, 80)})
        b = View({i: i for i in range(1, 10)})
        out = benchmark(a.join, b)
        assert out is a

    def test_leq(self, benchmark):
        a = View({i: i for i in range(1, 60)})
        b = View({i: i + 1 for i in range(1, 60)})
        assert benchmark(a.leq, b)


class TestExplorationThroughput:
    def test_exhaustive_enumeration(self, benchmark):
        def setup(mem):
            return {"x": mem.alloc("x", 0)}

        def w(env):
            yield Store(env["x"], 1, RLX)
            yield Store(env["x"], 2, RLX)

        def r(env):
            yield Load(env["x"], RLX)
            yield Load(env["x"], RLX)

        def run():
            return sum(1 for _ in explore_all(
                lambda: Program(setup, [w, r])))
        count = benchmark(run)
        assert count > 10


class TestDporReduction:
    def test_tree_reduction(self, report, bench_record):
        """Naive vs sleep-set-DPOR execution counts on three
        representative scenarios, at equal final-outcome coverage.

        The independent-writer scenario is the paper-style best case
        (n! schedules collapse to one); the litmus and queue scenarios
        show the reduction on real workloads with genuine data
        nondeterminism mixed in.
        """
        def writers(n):
            def setup(mem):
                return [mem.alloc(f"x{i}", 0) for i in range(n)]

            def writer(i):
                def body(env):
                    yield Store(env[i], 1, RLX)
                return body
            return lambda: Program(setup, [writer(i) for i in range(n)])

        scenarios = [
            ("writers-3-independent", writers(3), 2_000),
            ("litmus:IRIW+acq", CATALOGUE["IRIW+acq"], 2_000),
            ("vyukov-queue[t2xo1]",
             mixed_stress(lambda m: VyukovQueue.setup(m, "q", capacity=16),
                          "queue", threads=2, ops_per_thread=1, seed=0),
             400),
        ]
        rows = []
        recorded = []
        for name, factory, max_steps in scenarios:
            def outcome_key(result):
                return tuple(repr(result.returns[t])
                             for t in sorted(result.returns))

            t0 = time.perf_counter()
            naive_out = set()
            naive = 0
            for r in explore_all(factory, max_steps=max_steps):
                naive += 1
                if r.ok:
                    naive_out.add(outcome_key(r))
            naive_s = time.perf_counter() - t0
            stats = DporStats()
            t0 = time.perf_counter()
            dpor_out = set()
            reduced = 0
            for r in explore_all_dpor(factory, max_steps=max_steps,
                                      stats=stats):
                reduced += 1
                if r.ok:
                    dpor_out.add(outcome_key(r))
            dpor_s = time.perf_counter() - t0
            assert dpor_out == naive_out  # equal outcome coverage
            assert reduced <= naive
            ratio = naive / reduced if reduced else float("inf")
            rows.append(
                f"{name:<24} naive {naive:>5} ({naive / max(naive_s, 1e-9):>9,.0f}/s)"  # noqa: E501
                f"  dpor {reduced:>5} ({reduced / max(dpor_s, 1e-9):>9,.0f}/s)"  # noqa: E501
                f"  pruned {stats.pruned_subtrees:>5}  {ratio:5.1f}x")
            recorded.append({
                "scenario": name,
                "naive_executions": naive,
                "dpor_executions": reduced,
                "pruned_subtrees": stats.pruned_subtrees,
                "reduction_factor": round(ratio, 3),
                "naive_exec_per_sec": round(naive / max(naive_s, 1e-9), 1),
                "dpor_exec_per_sec": round(reduced / max(dpor_s, 1e-9), 1),
            })
        # The acceptance bar: >= 2x fewer executions on at least one
        # 3-thread scenario (the independent writers give 6x).
        assert any(r["naive_executions"] >= 2 * r["dpor_executions"]
                   for r in recorded)
        bench_record("dpor-tree-reduction", scenarios=recorded)
        report("E9 DPOR tree reduction (naive vs sleep sets)",
               "\n".join(rows))


class TestModelMatrix:
    def test_litmus_throughput_per_model(self, report, bench_record):
        """Exec/s per memory model on the full litmus catalogue.

        The same catalogue is enumerated (sleep-set DPOR) under each of
        the four shipped models (docs/memory_model.md).  Strengthening
        cuts both ways: stronger modes narrow read choices (fewer
        executions) but couple more operations through global views
        (less DPOR pruning — under TSO every atomic read is
        SC-footprinted), so the row makes the trade measurable.
        """
        from repro.models import LATTICE

        rows = []
        recorded = {}
        execs = {}
        for model in LATTICE:
            t0 = time.perf_counter()
            count = 0
            for name in CATALOGUE:
                count += sum(1 for _ in explore_all_dpor(
                    CATALOGUE[name], max_steps=2_000, model=model))
            secs = time.perf_counter() - t0
            execs[model] = count
            recorded[model] = round(count / max(secs, 1e-9), 1)
            rows.append(f"{model:<6}: {count:>6} exec in {secs:6.2f}s = "
                        f"{recorded[model]:>9,.1f} exec/s")
        bench_record("model-matrix", scenarios=len(CATALOGUE),
                     executions=execs, exec_per_sec=recorded)
        report(f"E9 model matrix — litmus catalogue "
               f"({len(CATALOGUE)} scenarios x {len(LATTICE)} models)",
               "\n".join(rows))


class TestEngineScaling:
    def test_serial_vs_parallel_throughput(self, report, bench_record):
        """Serial-vs-N-workers executions/sec on one exhaustive scenario.

        The same decision tree (ms-queue/ra, 3 threads x 1 op: ~9.5k
        executions) is enumerated serially and through the sharded engine
        at 2 and 4 workers; the telemetry counters give the throughput
        row.  The >1.5x speedup assertion only applies on machines with
        at least 4 cores — on fewer cores the row is still printed so the
        overhead of sharding is visible.
        """
        from repro.engine import (EngineParams, ScenarioSpec,
                                  build_scenario, run_scenario)

        spec = ScenarioSpec("mixed-stress",
                            kwargs={"impl": "ms-queue/ra", "threads": 3,
                                    "ops": 1, "seed": 0})
        scenario = build_scenario(spec)
        rates = {}
        execs = {}
        rows = []
        for workers in (1, 2, 4):
            params = EngineParams(styles=(), exhaustive=True,
                                  max_steps=400, max_executions=100_000,
                                  workers=workers)
            result = run_scenario(scenario, params, spec=spec)
            t = result.telemetry
            rates[workers] = t.executions_per_sec
            execs[workers] = result.report.executions
            rows.append(
                f"workers={workers}: {t.executions:>6} exec in "
                f"{t.wall_seconds:6.2f}s = {t.executions_per_sec:>8,.0f}"
                f" exec/s ({t.shards_done} shards)"
                + (f"  [{rates[workers] / rates[1]:.2f}x vs serial]"
                   if workers > 1 else ""))
        # Sharded enumerations cover exactly the serial tree.
        assert execs[2] == execs[1] and execs[4] == execs[1]
        cores = os.cpu_count() or 1
        bench_record("engine-scaling", scenario=scenario.name, cores=cores,
                     executions=execs[1],
                     exec_per_sec={str(w): round(rates[w], 1)
                                   for w in rates})
        report(f"E9 engine scaling — {scenario.name} ({cores} cores)",
               "\n".join(rows))
        if cores >= 4:
            assert rates[4] / rates[1] > 1.5

    def test_dist_scaling(self, report, bench_record):
        """Coordinator + N localhost nodes vs the serial run.

        The same exhaustive tree (ms-queue/ra, 3 threads x 1 op) is
        enumerated through the distributed layer with one and two worker
        node *processes* on localhost.  The merged counts must equal the
        serial run exactly — the throughput row then shows what the
        lease/TCP round-trips cost (and recover, with a second core)
        relative to the in-process pool.
        """
        import multiprocessing
        import threading

        from repro.engine import (EngineParams, ScenarioSpec,
                                  build_scenario, run_scenario)
        from repro.engine.chaos import _dist_node_main
        from repro.engine.dist import Coordinator, DistParams

        spec = ScenarioSpec("mixed-stress",
                            kwargs={"impl": "ms-queue/ra", "threads": 3,
                                    "ops": 1, "seed": 0})
        scenario = build_scenario(spec)
        base = dict(styles=(), exhaustive=True, max_steps=400,
                    max_executions=100_000)
        serial = run_scenario(scenario, EngineParams(**base), spec=spec)
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        rates = {0: serial.telemetry.executions_per_sec}
        rows = [f"serial : {serial.report.executions:>6} exec = "
                f"{rates[0]:>8,.0f} exec/s"]
        for nodes in (1, 2):
            coord = Coordinator(
                EngineParams(target_shards=8, **base), spec,
                DistParams(lease_seconds=30.0, node_wait_seconds=30.0,
                           tick=0.05))
            box = {}
            serve = threading.Thread(
                target=lambda c=coord, b=box: b.update(result=c.serve()),
                daemon=True)
            serve.start()
            procs = [ctx.Process(target=_dist_node_main,
                                 args=(coord.host, coord.port, f"b{i}"),
                                 daemon=True) for i in range(nodes)]
            for proc in procs:
                proc.start()
            serve.join(timeout=120.0)
            for proc in procs:
                proc.join(timeout=10.0)
            assert "result" in box, "coordinator never settled"
            result = box["result"]
            assert result.report.executions == serial.report.executions
            assert result.report.steps == serial.report.steps
            t = result.telemetry
            rates[nodes] = t.executions_per_sec
            rows.append(
                f"{nodes} node{'s' if nodes > 1 else ' '}: "
                f"{t.executions:>6} exec in {t.wall_seconds:6.2f}s = "
                f"{t.executions_per_sec:>8,.0f} exec/s "
                f"[{rates[nodes] / rates[0]:.2f}x vs serial]")
        cores = os.cpu_count() or 1
        bench_record("dist-scaling", scenario=scenario.name, cores=cores,
                     executions=serial.report.executions,
                     exec_per_sec={"serial": round(rates[0], 1),
                                   "nodes-1": round(rates[1], 1),
                                   "nodes-2": round(rates[2], 1)})
        report(f"E9 distributed scaling — {scenario.name} "
               f"({cores} cores)", "\n".join(rows))

    def test_hedge_audit_overhead(self, report, bench_record):
        """What arming hedging + a 10% audit costs a clean 2-worker run.

        The same exhaustive tree runs with both layers off and with
        ``hedge=True, audit_fraction=0.1``; on a healthy run the hedge
        deadline never fires, so the price is the estimator bookkeeping
        plus re-executing ~10% of shards in the driver — and the audits
        overlap the workers, so the wall-clock overhead must stay under
        10% (medians over alternated trials; merged counts must be
        identical and no divergence may be found).  Many small shards
        keep the one audit that *cannot* overlap — the last shard to
        complete — cheap even on a single core.
        """
        import statistics

        from repro.engine import (EngineParams, ScenarioSpec,
                                  build_scenario, run_scenario)

        spec = ScenarioSpec("mixed-stress",
                            kwargs={"impl": "ms-queue/ra", "threads": 3,
                                    "ops": 1, "seed": 0})
        scenario = build_scenario(spec)
        base = dict(styles=(), exhaustive=True, max_steps=400,
                    max_executions=100_000, workers=2, target_shards=32)
        plain_s, armed_s = [], []
        execs = set()
        for _ in range(5):
            plain = run_scenario(scenario, EngineParams(**base), spec=spec)
            armed = run_scenario(
                scenario, EngineParams(hedge=True, audit_fraction=0.1,
                                       **base), spec=spec)
            assert armed.report.executions == plain.report.executions
            assert armed.telemetry.audit_divergences == 0
            assert armed.telemetry.hedge_wins == 0  # nothing straggled
            execs.add(plain.report.executions)
            plain_s.append(plain.telemetry.wall_seconds)
            armed_s.append(armed.telemetry.wall_seconds)
        med_plain = statistics.median(plain_s)
        med_armed = statistics.median(armed_s)
        ratio = med_armed / max(med_plain, 1e-9)
        rate_plain = execs.pop() / max(med_plain, 1e-9)
        rate_armed = rate_plain * med_plain / max(med_armed, 1e-9)
        bench_record("hedge-overhead",
                     plain_s=round(med_plain, 3),
                     armed_s=round(med_armed, 3),
                     plain_exec_per_sec=round(rate_plain, 1),
                     armed_exec_per_sec=round(rate_armed, 1),
                     ratio=round(ratio, 3))
        report("E9 hedge+audit overhead (clean run, 2 workers, "
               "audit-fraction 0.1)",
               f"off : {med_plain:6.2f}s = {rate_plain:>8,.0f} exec/s\n"
               f"on  : {med_armed:6.2f}s = {rate_armed:>8,.0f} exec/s "
               f"(ratio {ratio:.3f})")
        assert ratio <= 1.10, \
            f"hedge+audit overhead {ratio:.3f} exceeds the 10% target"

    def test_fault_recovery_overhead(self, report):
        """What one injected worker crash costs a 2-worker run.

        The same exhaustive scenario runs clean and with a
        crash-on-first-attempt fault plan; the recovery machinery
        (heartbeat attribution, pool rebuild, single-shard requeue) shows
        up as the wall-clock delta, while the merged counts must be
        unaffected.
        """
        from repro.engine import (EngineParams, Fault, FaultPlan,
                                  ScenarioSpec, build_scenario,
                                  run_scenario)

        spec = ScenarioSpec("mixed-stress",
                            kwargs={"impl": "ms-queue/ra", "threads": 3,
                                    "ops": 1, "seed": 0})
        scenario = build_scenario(spec)
        params = EngineParams(styles=(), exhaustive=True, max_steps=400,
                              max_executions=100_000, workers=2,
                              shard_timeout=5.0, heartbeat_interval=0.05)
        clean = run_scenario(scenario, params, spec=spec)
        plan = FaultPlan((Fault("worker.explore", "crash", shard=1,
                                attempt=1),))
        with plan:
            faulted = run_scenario(scenario, params, spec=spec)
        assert faulted.report.executions == clean.report.executions
        assert faulted.telemetry.retries >= 1
        overhead = (faulted.telemetry.wall_seconds
                    - clean.telemetry.wall_seconds)
        report("E9 fault-recovery overhead (1 worker crash, 2 workers)",
               f"clean   : {clean.telemetry.wall_seconds:6.2f}s\n"
               f"crashed : {faulted.telemetry.wall_seconds:6.2f}s "
               f"({faulted.telemetry.retries} retries)\n"
               f"overhead: {overhead:+6.2f}s")


class TestDurableIoOverhead:
    def test_vfs_append_overhead(self, report, bench_record, tmp_path):
        """What routing the hot append path through `repro.engine.vfs`
        costs over calling ``os`` directly.

        Two measurements, because fsync latency dominates and is noisy:
        interleaved paired batches give the end-to-end ratio (medians),
        and an fsync-stubbed pass isolates the indirection cost itself,
        which must stay under 5% of a real durable append.  The
        happy-path discipline this guards: no size probe before the
        write (an ``fstat`` there costs as much as a second fsync on
        some filesystems) — rollback reconstructs the pre-call length
        on the error path only.
        """
        import statistics

        from repro.engine import vfs

        rec = (b'{"v":1,"crc":"deadbeef","rec":"grant",'
               b'"job":"job-0001","shard":7,"token":13}\n')

        def direct_append(path, data):
            fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                         0o644)
            try:
                done = 0
                while done < len(data):
                    done += os.write(fd, data[done:])
                os.fsync(fd)
            finally:
                os.close(fd)

        v = vfs.OsVFS()
        pa = str(tmp_path / "direct.jsonl")
        pb = str(tmp_path / "vfs.jsonl")
        n, trials = 150, 9
        direct_us, vfs_us, ratios = [], [], []
        for _ in range(trials):
            t0 = time.perf_counter()
            for _ in range(n):
                direct_append(pa, rec)
            t1 = time.perf_counter()
            for _ in range(n):
                v.append_blob(pb, rec, site="bench.append")
            t2 = time.perf_counter()
            direct_us.append((t1 - t0) / n * 1e6)
            vfs_us.append((t2 - t1) / n * 1e6)
            ratios.append((t2 - t1) / (t1 - t0))
        med_direct = statistics.median(direct_us)
        med_vfs = statistics.median(vfs_us)
        med_ratio = statistics.median(ratios)

        # With the barrier stubbed out, the remaining delta is exactly
        # what the vfs layer adds: the shim lookup, the wrapper frames,
        # the write-all loop bookkeeping.
        m, real_fsync = 2000, os.fsync
        try:
            os.fsync = lambda fd: None
            t0 = time.perf_counter()
            for _ in range(m):
                direct_append(pa, rec)
            t1 = time.perf_counter()
            for _ in range(m):
                v.append_blob(pb, rec, site="bench.append")
            t2 = time.perf_counter()
        finally:
            os.fsync = real_fsync
        indirection_us = ((t2 - t1) - (t1 - t0)) / m * 1e6

        bench_record("vfs-append-overhead",
                     direct_us=round(med_direct, 2),
                     vfs_us=round(med_vfs, 2),
                     ratio=round(med_ratio, 3),
                     indirection_us=round(indirection_us, 3))
        report("E9 vfs append overhead (hot durable path)",
               f"direct os.write+fsync : {med_direct:7.2f} us/append\n"
               f"vfs append_blob       : {med_vfs:7.2f} us/append "
               f"(median ratio {med_ratio:.3f})\n"
               f"indirection alone     : {indirection_us:+7.3f} us/append "
               f"(fsync stubbed)")
        # The 5% claim: the indirection's own cost vs a real durable
        # append.  The end-to-end ratio only gets a loose regression
        # guard — fsync jitter swamps a tight bound.
        assert indirection_us <= 0.05 * med_direct, \
            f"vfs indirection {indirection_us:.2f}us exceeds 5% of " \
            f"direct append ({med_direct:.2f}us)"
        assert med_ratio <= 1.25
