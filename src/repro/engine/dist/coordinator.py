"""The distributed driver: plan shards, lease them out, merge honestly.

The coordinator is the local pool driver (`repro.engine.pool`) with the
process pool swapped for a lease table over TCP.  Everything
result-determining is unchanged: shards come from `plan_shards_ex`,
resumed shards come from the same fingerprinted checkpoint, and the
merge is literally `finalize_run` — which is why a distributed run is
byte-for-byte the serial report, and why a degraded run (nodes lost,
retry budgets spent) reports truncated `Coverage` instead of lying.

Liveness federates through the protocol's in-band heartbeats: a node
beat names the ``(shard_id, token)`` it is working under, and renews
exactly that lease (`LeaseTable.renew`).  A node that dies mid-shard
stops beating, its lease expires on the next tick, and the shard is
requeued to another node with the dead one excluded.  A node that was
merely paused and submits after expiry presents a fenced-off token and
is counted once — as `results_fenced`, not as coverage.

Failure handling is three nested safety nets:

1. connection loss -> `release_node` requeues the node's leases now;
2. silent hang -> the lease deadline expires without renewal;
3. repeated failure -> the per-shard retry budget marks the shard
   FAILED, and `finalize_run` degrades coverage instead of raising.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ...checking.runner import ScenarioReport
from ..checkpoint import CheckpointWriter, load_completed_ex, run_fingerprint
from ..corpus import CorpusEntry
from ..pool import (EngineParams, EngineResult, ResultCorrupt, _decode_result,
                    finalize_run, plan_shards_ex)
from ..registry import ScenarioSpec, build_scenario
from ..telemetry import ProgressReporter
from .lease import ACCEPTED, LeaseTable
from .protocol import (MSG_BEAT, MSG_DONE, MSG_FAIL, MSG_GRANT, MSG_HELLO,
                       MSG_IDLE, MSG_RESULT, MSG_WANT, MSG_WELCOME,
                       PROTOCOL_VERSION, Channel)


@dataclass
class DistParams:
    """Coordinator-side knobs; nothing here affects the merged report."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 -> ephemeral; the bound port is `Coordinator.port`
    lease_seconds: float = 10.0
    #: How long to keep waiting with zero connected nodes before
    #: degrading to a truncated-coverage result.
    node_wait_seconds: float = 30.0
    tick: float = 0.2
    idle_wait: float = 0.25


class Coordinator:
    """Serve one scenario's shards to remote nodes and merge the run."""

    def __init__(self, params: EngineParams, spec: ScenarioSpec,
                 dist: Optional[DistParams] = None,
                 listener: Optional[socket.socket] = None,
                 on_event: Optional[Callable[..., None]] = None,
                 token_floor: int = 0):
        if spec is None:
            raise ValueError("distributed runs need a registry spec: "
                             "nodes rebuild the scenario from its "
                             "to_json() form")
        self.params = params
        self.spec = spec
        self.dist = dist or DistParams()
        self.scenario = build_scenario(spec)
        self.shards, self.planner_pruned = plan_shards_ex(self.scenario,
                                                          params)
        self._fingerprint = run_fingerprint(self.scenario.name, spec,
                                            params.fingerprint_json(),
                                            self.shards)
        self.table = LeaseTable(len(self.shards),
                                max_retries=params.max_retries,
                                lease_seconds=self.dist.lease_seconds,
                                backoff_base=params.retry_backoff,
                                token_floor=token_floor)
        # Observability hook for the campaign service: called as
        # ``on_event(kind, **fields)`` with kinds "grant" (a fresh lease
        # is about to go on the wire), "merge" (a result was accepted
        # and merged), and "settled" (about to finalize) — so a WAL can
        # record the transition *before* the action it describes.
        self._on_event = on_event or (lambda kind, **fields: None)
        self._grant_seen: set = set()
        self._draining = threading.Event()
        self._cancelled = threading.Event()
        self.results: Dict[int, Tuple[ScenarioReport,
                                      List[CorpusEntry]]] = {}
        self._markers: set = set()
        quarantined = 0
        if params.checkpoint_path:
            done, self._markers, diag = load_completed_ex(
                params.checkpoint_path, self._fingerprint)
            quarantined = diag.corrupt
            for sid, (report, entries) in done.items():
                if 0 <= sid < len(self.shards):
                    self.results[sid] = (report, entries)
                    self.table.mark_done(sid)
        self.reporter = ProgressReporter(
            total_shards=len(self.shards), enabled=params.progress,
            label=f"dist:{self.scenario.name}")
        self.reporter.on_quarantined(quarantined)
        self.reporter.on_planner_pruned(self.planner_pruned)
        for report, _entries in self.results.values():
            self.reporter.on_resumed(report.executions, report.steps,
                                     report.pruned_subtrees)
        self._writer = (CheckpointWriter(params.checkpoint_path,
                                         self._fingerprint)
                        if params.checkpoint_path else None)
        self._lock = threading.Lock()
        self._nodes: Dict[str, Channel] = {}
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        # The campaign daemon keeps one node port alive across many
        # runs: it injects its own bound listener, which the run must
        # borrow (stop accepting on shutdown) but never close.
        self._owns_listener = listener is None
        if listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.dist.host, self.dist.port))
            listener.listen()
        self._listener = listener
        self.host, self.port = self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def serve(self) -> EngineResult:
        """Accept nodes, lease shards until settled, merge, return."""
        deadline = (time.time() + self.params.run_seconds
                    if self.params.run_seconds is not None else None)
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          name="dist-accept", daemon=True)
        self._acceptor.start()
        last_node_seen = time.time()
        try:
            while True:
                time.sleep(self.dist.tick)
                if self._cancelled.is_set():
                    break
                now = time.time()
                with self._lock:
                    for lease in self.table.expire(now):
                        self.reporter.on_lease_expired(lease.shard_id,
                                                       lease.node_id)
                    if self.table.settled:
                        break
                    if self._draining.is_set() \
                            and not self.table.leases:
                        break  # drained: in-flight work is all home
                    have_nodes = bool(self._nodes)
                if have_nodes:
                    last_node_seen = now
                elif now - last_node_seen >= self.dist.node_wait_seconds:
                    break  # degrade: merge what came back
                if deadline is not None and now >= deadline:
                    break
        finally:
            self._shutdown()
        with self._lock:
            for sid in range(len(self.shards)):
                if sid in self.results:
                    continue
                reason = self.table.failure_reason(sid) \
                    or "no live node returned this shard"
                self.reporter.on_skipped(sid, reason)
            self._on_event("settled", settled=self.table.settled,
                           drained=self._draining.is_set(),
                           cancelled=self._cancelled.is_set())
            return finalize_run(self.scenario.name, self.params,
                                self.shards, self.planner_pruned,
                                self.results, self._markers,
                                self.reporter, self._writer)

    def drain(self) -> None:
        """Stop granting new leases; `serve` returns once every
        in-flight lease has completed, failed, or expired."""
        if not self._draining.is_set():
            self._draining.set()
            self.reporter.on_drain()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def cancel(self) -> None:
        """Stop now: abandon in-flight leases and merge what came back."""
        self._cancelled.set()

    def _shutdown(self) -> None:
        self._stop.set()
        if self._owns_listener:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            channels = list(self._nodes.values())
        for ch in channels:
            try:
                ch.send(MSG_DONE)
            except ConnectionError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        # A borrowed listener outlives this run: the next run must not
        # race this one's acceptor for it, so wait the acceptor out.
        acceptor = getattr(self, "_acceptor", None)
        if acceptor is not None:
            acceptor.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(target=self._serve_conn,
                                      args=(Channel(conn),),
                                      name="dist-conn", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _serve_conn(self, ch: Channel) -> None:
        node_id = None
        try:
            hello = ch.recv(timeout=5.0)
            if (hello is None or hello.get("t") != MSG_HELLO
                    or hello.get("proto") != PROTOCOL_VERSION):
                return
            node_id = str(hello["node"])
            with self._lock:
                self._nodes[node_id] = ch
                self.reporter.on_node_joined(node_id)
            ch.send(MSG_WELCOME, spec=self.spec.to_json(),
                    params=self.params.wire_json(),
                    lease=self.dist.lease_seconds,
                    heartbeat=self.params.heartbeat_interval)
            while not self._stop.is_set():
                msg = ch.recv(timeout=0.5)
                if msg is None:
                    continue
                self._dispatch(ch, node_id, msg)
        except ConnectionError:
            pass
        finally:
            if node_id is not None:
                with self._lock:
                    # Only the node's *current* channel may release its
                    # leases: a node that reconnected under the same id
                    # (sever fault, TCP reset) must not have its fresh
                    # lease requeued by the dying old connection.
                    if self._nodes.get(node_id) is ch:
                        del self._nodes[node_id]
                        lost = self.table.release_node(node_id,
                                                       time.time())
                        # A node leaving after the table settled was
                        # *told* to go (`done` reply): that is a
                        # graceful exit, not a lost node — only count
                        # losses mid-run.
                        if not self._stop.is_set() \
                                and not self.table.settled:
                            self.reporter.on_node_lost(
                                node_id, f"connection lost "
                                         f"({len(lost)} leases requeued)")
            ch.close()

    def _dispatch(self, ch: Channel, node_id: str, msg: Dict) -> None:
        mtype = msg.get("t")
        if mtype == MSG_WANT:
            self._on_want(ch, node_id)
        elif mtype == MSG_BEAT:
            if msg.get("shard_id") is not None:
                with self._lock:
                    self.table.renew(node_id, msg["shard_id"],
                                     msg["token"], time.time())
        elif mtype == MSG_RESULT:
            self._on_result(node_id, msg)
        elif mtype == MSG_FAIL:
            self._on_fail(node_id, msg)

    def _on_want(self, ch: Channel, node_id: str) -> None:
        with self._lock:
            if self._draining.is_set() or self._cancelled.is_set():
                # Draining: no fresh grants, only in-flight leases may
                # finish.  IDLE (not DONE) so the node stays attached
                # until `_shutdown` dismisses everyone together.
                ch.send(MSG_IDLE, wait=self.dist.idle_wait)
                return
            # Exclusion must not starve a requeued shard: the table
            # grants a shard back to an excluded node once every live
            # node is excluded from it (spending a retry, so a
            # deterministic crasher still degrades to FAILED).
            lease = self.table.grant(node_id, time.time(),
                                     live_nodes=set(self._nodes))
            settled = self.table.settled
            if lease is not None \
                    and (lease.shard_id, lease.token) not in self._grant_seen:
                # Log the grant exactly once per lease *before* it goes
                # on the wire (grant replies are idempotent per node,
                # so a re-sent lease must not double-log).
                self._grant_seen.add((lease.shard_id, lease.token))
                self._on_event("grant", shard=lease.shard_id,
                               token=lease.token, attempt=lease.attempt,
                               node=node_id)
        if lease is None:
            ch.send(MSG_DONE if settled else MSG_IDLE,
                    wait=self.dist.idle_wait)
            return
        ch.send(MSG_GRANT, fault_shard=lease.shard_id,
                fault_attempt=lease.attempt, shard_id=lease.shard_id,
                shard=self.shards[lease.shard_id].to_json(),
                token=lease.token, attempt=lease.attempt)

    def _on_result(self, node_id: str, msg: Dict) -> None:
        sid, token = msg["shard_id"], msg["token"]
        # Decode *before* settling the lease: a corrupt blob must spend
        # a retry, not permanently settle the shard as done.
        try:
            report, entries = _decode_result(sid, msg["blob"],
                                             msg["blob_crc"])
        except ResultCorrupt:
            with self._lock:
                self.reporter.on_corrupt_result(sid)
                self.table.fail(sid, token, node_id, time.time(),
                                "result failed its CRC check")
            return
        with self._lock:
            verdict = self.table.complete(sid, token, node_id)
            if verdict != ACCEPTED:
                # A resurrected node's stale submission: fence it off.
                self.reporter.on_fenced(sid, node_id)
                return
            self._complete(sid, report, entries, int(msg.get("pid", 0)),
                           token)

    def _on_fail(self, node_id: str, msg: Dict) -> None:
        sid, token = msg["shard_id"], msg["token"]
        error = str(msg.get("error", "unknown error"))
        with self._lock:
            if self.table.fail(sid, token, node_id, time.time(), error):
                self.reporter.on_retry(sid, self.table.attempts(sid),
                                       error)
            else:
                self.reporter.on_fenced(sid, node_id)

    def _complete(self, sid: int, report: ScenarioReport,
                  entries: List[CorpusEntry], pid: int,
                  token: int = 0) -> None:
        self._on_event("merge", shard=sid, token=token,
                       executions=report.executions)
        self.results[sid] = (report, entries)
        if report.budget_exhausted:
            # Not checkpointed: a later, better-funded resume should
            # re-explore a truncated shard rather than trust its stub.
            self.reporter.on_budget_stop(sid)
        elif self._writer is not None:
            self._writer.write_shard(sid, report, entries)
        self.reporter.on_shard_done(sid, pid, report.executions,
                                    report.steps, report.pruned_subtrees)


def serve_scenario(params: EngineParams, spec: ScenarioSpec,
                   dist: Optional[DistParams] = None,
                   on_listening=None) -> EngineResult:
    """One-call coordinator: bind, serve until settled, merge."""
    coord = Coordinator(params, spec, dist)
    if on_listening is not None:
        on_listening(coord.host, coord.port)
    return coord.serve()
