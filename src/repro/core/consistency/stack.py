"""``StackConsistent``: LIFO consistency conditions for stacks.

The paper gives queue conditions in full and notes (Section 4.1) that the
stack instance differs by replacing FIFO with LIFO.  The mirrored rules:

* STACK-TYPES, STACK-MATCHES, STACK-INJ, STACK-SO-HB — as for queues;
* STACK-LIFO — if a pop ``d'`` returns ``e'`` while some push ``e`` with
  ``e' lhb e`` and ``e lhb d'`` (an element pushed *above* ``e'`` and
  visible to the popper) is still unpopped in the graph at ``d'``'s commit,
  LIFO is violated: the element on top must go first.
* STACK-EMPPOP — an empty pop ``d`` can only commit if every push that
  happens-before ``d`` has already been popped in the graph at ``d``'s
  commit.
"""

from __future__ import annotations

from typing import List

from ..event import Pop, Push
from ..graph import Graph
from .base import Violation, check_so_in_lhb, matching


def check_stack_consistent(graph: Graph) -> List[Violation]:
    """All StackConsistent violations of ``graph`` (empty = consistent)."""
    violations: List[Violation] = []
    out, into = matching(graph)

    for eid, ev in sorted(graph.events.items()):
        if not isinstance(ev.kind, (Push, Pop)):
            violations.append(Violation(
                "STACK-TYPES", f"e{eid} has foreign kind {ev.kind!r}"))

    for eid, ev in sorted(graph.events.items()):
        if isinstance(ev.kind, Push):
            if len(out.get(eid, [])) > 1:
                violations.append(Violation(
                    "STACK-INJ",
                    f"push e{eid} popped more than once: {out[eid]}"))
            if into.get(eid):
                violations.append(Violation(
                    "STACK-INJ", f"push e{eid} is an so-target"))
        elif isinstance(ev.kind, Pop):
            sources = into.get(eid, [])
            if ev.kind.is_empty:
                if sources or out.get(eid):
                    violations.append(Violation(
                        "STACK-INJ", f"empty pop e{eid} has so edges"))
            else:
                if len(sources) != 1:
                    violations.append(Violation(
                        "STACK-INJ",
                        f"pop e{eid} matched with {sources} pushes"))
                for src in sources:
                    src_ev = graph.events.get(src)
                    if src_ev is None or not isinstance(src_ev.kind, Push):
                        violations.append(Violation(
                            "STACK-MATCHES",
                            f"pop e{eid} matched with non-push e{src}"))
                    elif src_ev.kind.val != ev.kind.val:
                        violations.append(Violation(
                            "STACK-MATCHES",
                            f"pop e{eid} returned {ev.kind.val!r} but "
                            f"e{src} pushed {src_ev.kind.val!r}"))

    violations.extend(check_so_in_lhb(graph, "STACK-SO-HB"))

    pushes = graph.of_kind(Push)

    # LIFO.
    for a, b in sorted(graph.so):  # pop b returns push a
        if a not in graph.events or b not in graph.events:
            continue
        dprime = graph.events[b]
        for e in pushes:
            if e.eid == a:
                continue
            if not (graph.lhb(a, e.eid) and graph.lhb(e.eid, b)):
                continue
            # e was pushed above a and is visible to the popper; it must
            # already be popped when b commits.
            witnesses = [dp for dp in out.get(e.eid, [])
                         if dp in graph.events
                         and graph.events[dp].commit_index
                         < dprime.commit_index]
            if not witnesses:
                violations.append(Violation(
                    "STACK-LIFO",
                    f"pop e{b} returned e{a} while the later push e{e.eid} "
                    f"(visible to it) is still unpopped"))

    # EMPPOP.
    for ev in graph.of_kind(Pop):
        if not ev.kind.is_empty:
            continue
        for e in pushes:
            if not graph.lhb(e.eid, ev.eid):
                continue
            witnesses = [dp for dp in out.get(e.eid, [])
                         if dp in graph.events
                         and graph.events[dp].commit_index < ev.commit_index]
            if not witnesses:
                violations.append(Violation(
                    "STACK-EMPPOP",
                    f"empty pop e{ev.eid} but push e{e.eid} happens-before "
                    f"it and is unpopped at its commit"))
    return violations
