"""E10 — the paper's §6 future work, built: Chase–Lev work-stealing deque.

Regenerates the extension experiment: the fenced (Lê et al.) deque
satisfies ``WSDequeConsistent`` across explored executions; removing the
seq-cst fences re-creates the classic double-take, which the consistency
conditions catch.  Also reports the work split (owner takes vs steals).
"""

from repro.core import EMPTY, check_wsdeque_consistent
from repro.libs import ChaseLevDeque
from repro.libs.treiber import FAIL_RACE
from repro.rmc import Program, explore_random


def factory(fenced, thieves=2, pushes=4):
    def setup(mem):
        return {"d": ChaseLevDeque.setup(mem, "d", capacity=32,
                                         fenced=fenced)}

    def owner(env):
        for v in range(1, pushes + 1):
            yield from env["d"].push(v)
        got = []
        for _ in range(pushes):
            v = yield from env["d"].take()
            if v is not EMPTY:
                got.append(v)
        return got

    def thief(env):
        got = []
        for _ in range(pushes):
            v = yield from env["d"].steal()
            if v not in (EMPTY, FAIL_RACE):
                got.append(v)
        return got
    return lambda: Program(setup, [owner] + [thief] * thieves)


def run_config(fenced, runs=600):
    complete = violations = duplicated = taken = stolen = 0
    for r in explore_random(factory(fenced), runs=runs, seed=1):
        if not r.ok:
            continue
        complete += 1
        g = r.env["d"].graph()
        errs = check_wsdeque_consistent(g) + g.wellformedness_errors()
        violations += bool(errs)
        all_got = r.returns[0] + r.returns[1] + r.returns[2]
        duplicated += len(all_got) != len(set(all_got))
        taken += len(r.returns[0])
        stolen += len(r.returns[1]) + len(r.returns[2])
    return complete, violations, duplicated, taken, stolen


def test_fenced_deque_consistent(benchmark, report):
    complete, violations, duplicated, taken, stolen = benchmark.pedantic(
        run_config, args=(True,), rounds=1, iterations=1)
    assert violations == 0 and duplicated == 0
    report("E10 Chase–Lev (fenced, Lê et al. protocol)",
           f"complete={complete}  WSDeque violations={violations}  "
           f"duplicated elements={duplicated}\n"
           f"work split: owner-takes={taken}  steals={stolen}")


def test_unfenced_deque_caught(benchmark, report):
    complete, violations, duplicated, _t, _s = benchmark.pedantic(
        run_config, args=(False, 3000), rounds=1, iterations=1)
    assert violations > 0, "the classic double-take must be observable"
    report("E10 Chase–Lev WITHOUT seq-cst fences (ablation)",
           f"complete={complete}  WSDeque violations={violations}  "
           f"duplicated elements={duplicated}\n"
           f"(the checker catches the double-take the fences prevent)")
