"""Linearizable-history machinery: interp, respects_lhb, the linearizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (Deq, EMPTY, Enq, Pop, Push, check_linearizable_history,
                        interp, linearize, respects_lhb, to_from_keys)
from repro.core.history import QueueSpec, StackSpec

from ..conftest import closed


class TestInterpQueue:
    def test_fifo_order_accepted(self):
        g = closed((0, Enq(1), []), (1, Enq(2), []),
                   (2, Deq(1), [0]), (3, Deq(2), [1]),
                   so=[(0, 2), (1, 3)])
        assert interp(g, [0, 1, 2, 3], "queue") == ()

    def test_non_fifo_rejected(self):
        g = closed((0, Enq(1), []), (1, Enq(2), []),
                   (2, Deq(2), [1]), (3, Deq(1), [0]),
                   so=[(1, 2), (0, 3)])
        assert interp(g, [0, 1, 2, 3], "queue") is None

    def test_empty_deq_requires_truly_empty(self):
        g = closed((0, Enq(1), []), (1, Deq(EMPTY), []))
        assert interp(g, [0, 1], "queue") is None
        assert interp(g, [1, 0], "queue") == (0,)

    def test_deq_from_empty_rejected(self):
        g = closed((0, Deq(1), []))
        assert interp(g, [0], "queue") is None

    def test_leftover_state_returned(self):
        g = closed((0, Enq(1), []), (1, Enq(2), []))
        assert interp(g, [0, 1], "queue") == (0, 1)


class TestInterpStack:
    def test_lifo_accepted(self):
        g = closed((0, Push(1), []), (1, Push(2), []),
                   (2, Pop(2), [1]), (3, Pop(1), [0]),
                   so=[(1, 2), (0, 3)])
        assert interp(g, [0, 1, 2, 3], "stack") == ()

    def test_fifo_on_stack_rejected(self):
        g = closed((0, Push(1), []), (1, Push(2), []),
                   (2, Pop(1), [0]), (3, Pop(2), [1]),
                   so=[(0, 2), (1, 3)])
        assert interp(g, [0, 1, 2, 3], "stack") is None

    def test_interleaved_push_pop(self):
        g = closed((0, Push(1), []), (1, Pop(1), [0]), (2, Push(2), []),
                   (3, Pop(2), [2]), so=[(0, 1), (2, 3)])
        assert interp(g, [0, 1, 2, 3], "stack") == ()

    def test_empty_pop_strict(self):
        g = closed((0, Push(1), []), (1, Pop(EMPTY), []))
        assert interp(g, [1, 0], "stack") == (0,)
        assert interp(g, [0, 1], "stack") is None


class TestRespectsLhb:
    def test_respected(self):
        g = closed((0, Enq(1), []), (1, Enq(2), [0]))
        assert respects_lhb(g, [0, 1])

    def test_violated(self):
        g = closed((0, Enq(1), []), (1, Enq(2), [0]))
        assert not respects_lhb(g, [1, 0])


class TestToFromKeys:
    def test_sorts_by_key(self):
        assert to_from_keys({3: (5, 0), 1: (2, 0), 2: (2, 1)}) == [1, 2, 3]


class TestLinearize:
    def test_finds_reordering(self):
        """Commit order is not FIFO but a valid linearization exists."""
        g = closed((0, Enq(1), []), (1, Enq(2), []),
                   (2, Deq(2), [1]), (3, Deq(1), [0]),
                   so=[(1, 2), (0, 3)])
        to = linearize(g, "queue")
        assert to is not None
        assert interp(g, to, "queue") is not None
        assert respects_lhb(g, to)

    def test_reports_impossible(self):
        """e0 lhb e1 and both dequeued hb-inverted: no linearization."""
        g = closed((0, Enq(1), []), (1, Enq(2), [0]),
                   (2, Deq(2), [0, 1]), (3, Deq(1), [0, 1, 2]),
                   so=[(1, 2), (0, 3)])
        assert linearize(g, "queue") is None

    def test_empty_graph(self):
        assert linearize(closed(), "queue") == []

    def test_stack_linearization(self):
        g = closed((0, Push(1), []), (1, Push(2), []),
                   (2, Pop(1), [0]), (3, Pop(2), [1]),
                   so=[(0, 2), (1, 3)])
        to = linearize(g, "stack")
        assert to is not None and interp(g, to, "stack") is not None


class TestCheckLinearizableHistory:
    def test_given_valid_to(self):
        g = closed((0, Push(1), []), (1, Pop(1), [0]), so=[(0, 1)])
        assert check_linearizable_history(g, "stack", to=[0, 1]) == []

    def test_given_non_permutation(self):
        g = closed((0, Push(1), []), (1, Pop(1), [0]), so=[(0, 1)])
        v = check_linearizable_history(g, "stack", to=[0])
        assert any(x.rule == "HIST-PERM" for x in v)

    def test_given_lhb_violating_to(self):
        g = closed((0, Push(1), []), (1, Pop(1), [0]), so=[(0, 1)])
        v = check_linearizable_history(g, "stack", to=[1, 0])
        assert any(x.rule == "HIST-LHB" for x in v)

    def test_given_interp_violating_to(self):
        g = closed((0, Push(1), []), (1, Push(2), [0]),
                   (2, Pop(1), [0, 1]), so=[(0, 2)])
        v = check_linearizable_history(g, "stack", to=[0, 1, 2])
        assert any(x.rule == "HIST-INTERP" for x in v)

    def test_search_mode(self):
        g = closed((0, Enq(1), []), (1, Deq(1), [0]), so=[(0, 1)])
        assert check_linearizable_history(g, "queue") == []


# ----------------------------------------------------------------------
# Property tests: histories generated FROM a sequential run always
# linearize; the generated to is accepted by interp.
# ----------------------------------------------------------------------

ops_strategy = st.lists(st.sampled_from(["push", "pop"]), min_size=1,
                        max_size=8)


@st.composite
def sequential_stack_history(draw):
    """Generate a graph whose commit order IS a valid LIFO history."""
    ops = draw(ops_strategy)
    specs = []
    so = []
    stack = []
    eid = 0
    for op in ops:
        if op == "push":
            specs.append((eid, Push(eid), []))
            stack.append(eid)
        else:
            if stack:
                src = stack.pop()
                specs.append((eid, Pop(src), []))
                so.append((src, eid))
            else:
                specs.append((eid, Pop(EMPTY), []))
        eid += 1
    return closed(*specs, so=so)


@given(sequential_stack_history())
@settings(max_examples=60, deadline=None)
def test_sequential_stack_histories_linearize(g):
    to = linearize(g, "stack")
    assert to is not None
    assert interp(g, to, "stack") is not None
    assert respects_lhb(g, to)


@given(sequential_stack_history())
@settings(max_examples=60, deadline=None)
def test_commit_order_itself_interprets(g):
    order = [ev.eid for ev in g.sorted_events()]
    assert interp(g, order, "stack") is not None
