"""Protocol invariants over graph prefixes (the Fig. 3 machinery)."""

import pytest

from repro.core import (Deq, EMPTY, Enq, check_prefix_invariant,
                        check_queue_consistent, check_stack_consistent,
                        consistency_invariant, exchanger_prefix_errors,
                        max_successful_removals)
from repro.libs import ElimStack, Exchanger, HWQueue, MSQueue, RELACQ
from repro.rmc import Program, explore_random

from ..conftest import closed


class TestPrefixInvariant:
    def test_holds_on_every_prefix(self):
        g = closed((0, Enq(1), []), (1, Deq(1), [0]), so=[(0, 1)])
        assert check_prefix_invariant(g, lambda p: None) == []

    def test_reports_the_failing_prefix(self):
        g = closed((0, Enq(1), []), (1, Enq(2), [0]), (2, Enq(3), [1]))

        def at_most_two(prefix):
            return "too many" if len(prefix.events) > 2 else None
        violations = check_prefix_invariant(g, at_most_two)
        assert len(violations) == 1
        assert "@2" in violations[0].detail

    def test_max_successful_removals(self):
        g = closed((0, Enq(1), []), (1, Enq(2), [0]),
                   (2, Deq(1), [0, 1]), (3, Deq(2), [0, 1, 2]),
                   so=[(0, 2), (1, 3)])
        assert check_prefix_invariant(g, max_successful_removals(2)) == []
        assert check_prefix_invariant(g, max_successful_removals(1)) != []


class TestConsistencyAsInvariant:
    @pytest.mark.parametrize("build,kind,check", [
        (lambda mem: MSQueue.setup(mem, "q", RELACQ), "queue",
         check_queue_consistent),
        (lambda mem: HWQueue.setup(mem, "q", capacity=16), "queue",
         check_queue_consistent),
    ])
    def test_queue_consistency_holds_at_every_prefix(self, build, kind,
                                                     check):
        """``Queue(q, G)`` implies consistency *invariantly*: not just the
        final graph but the graph after every commit."""
        def setup(mem):
            return {"q": build(mem)}

        def producer(env):
            yield from env["q"].enqueue(1)
            yield from env["q"].enqueue(2)

        def consumer(env):
            out = []
            for _ in range(2):
                out.append((yield from env["q"].try_dequeue()))
            return out
        inv = consistency_invariant(check)
        for r in explore_random(lambda: Program(setup, [producer, consumer]),
                                runs=120, seed=3):
            assert r.ok
            violations = check_prefix_invariant(r.env["q"].graph(), inv)
            assert violations == [], [str(v) for v in violations]

    def test_elim_stack_consistent_at_every_prefix(self):
        """§4.2: no concurrent operation observes the intermediate state
        of an elimination — executably, the composed ES graph is
        consistent after *every* commit (pairs are adjacent)."""
        def setup(mem):
            return {"s": ElimStack.setup(mem, "es", patience=4, attempts=2,
                                         elim_only=True)}

        def pusher(env):
            yield from env["s"].try_push(1)

        def popper(env):
            yield from env["s"].try_pop()
        inv = consistency_invariant(check_stack_consistent)
        checked_pairs = 0
        for r in explore_random(lambda: Program(setup, [pusher, popper]),
                                runs=200, seed=5):
            assert r.ok
            g = r.env["s"].graph()
            checked_pairs += len(g.so)
            violations = check_prefix_invariant(g, inv)
            assert violations == [], [str(v) for v in violations]
        assert checked_pairs > 30


class TestExchangerIntermediateStates:
    def test_inconsistency_only_inside_helper_windows(self):
        """The exchanger's graph has genuinely inconsistent prefixes —
        exactly the ones cutting a pair between helpee and helper commit
        (the paper's intermediate states) — and nowhere else."""
        def setup(mem):
            return {"x": Exchanger.setup(mem, "x")}

        def t(v):
            def thread(env):
                return (yield from env["x"].exchange(v, patience=3,
                                                     attempts=2))
            return thread
        saw_intermediate = False
        from repro.core import check_exchanger_consistent
        for r in explore_random(lambda: Program(setup, [t("A"), t("B")]),
                                runs=300, seed=7):
            assert r.ok
            g = r.env["x"].graph()
            # Modulo intermediate states: always consistent.
            assert exchanger_prefix_errors(g) == []
            # And the raw every-prefix check does fail when a pair exists
            # (the helpee-committed prefix lacks its partner).
            if g.so:
                raw = check_prefix_invariant(
                    g, consistency_invariant(check_exchanger_consistent))
                saw_intermediate = saw_intermediate or bool(raw)
        assert saw_intermediate


class TestFig3Protocol:
    def test_mp_with_permit_counting(self):
        """Fig. 3's invariant: deqPerm(size(G.so)) with two permits —
        checked after every commit of the real MP client."""
        from repro.checking import mp_queue
        build = lambda mem: MSQueue.setup(mem, "q", RELACQ)
        for r in explore_random(mp_queue(build), runs=150, seed=9):
            if not r.ok:
                continue
            g = r.env["q"].graph()
            violations = check_prefix_invariant(
                g, max_successful_removals(2))
            assert violations == []
            deqs = [ev for ev in g.events.values()
                    if isinstance(ev.kind, Deq) and not ev.kind.is_empty]
            assert len(deqs) <= 2
