"""E9 — microbenchmarks and ablations of the framework itself.

Measures the knobs DESIGN.md calls out: machine step throughput, the cost
of race detection, the cost of event/ghost instrumentation, view-join
cost, and exploration throughput.  These are true repeated-timing
benchmarks (pytest-benchmark statistics apply).
"""

import pytest

from repro.checking import mixed_stress
from repro.libs import MSQueue, RELACQ
from repro.rmc import (ACQ, REL, RLX, Load, Program, RandomDecider, Store,
                       View, explore_all)


def counter_program(ops=200):
    def setup(mem):
        return {"x": mem.alloc("x", 0), "f": mem.alloc("f", 0)}

    def producer(env):
        for i in range(ops):
            yield Store(env["x"], i, RLX)
            yield Store(env["f"], i, REL)

    def consumer(env):
        for _ in range(ops):
            yield Load(env["f"], ACQ)
            yield Load(env["x"], RLX)
    return Program(setup, [producer, consumer])


class TestMachineThroughput:
    def test_steps_with_race_detection(self, benchmark):
        def run():
            r = counter_program().run(RandomDecider(1))
            assert r.ok
            return r.steps
        steps = benchmark(run)
        assert steps == 800

    def test_steps_without_race_detection(self, benchmark):
        def run():
            r = counter_program().run(RandomDecider(1),
                                      race_detection=False)
            return r.steps
        assert benchmark(run) == 800


class TestInstrumentationCost:
    def test_queue_workload_with_events(self, benchmark):
        factory = mixed_stress(lambda m: MSQueue.setup(m, "q", RELACQ),
                               "queue", threads=2, ops_per_thread=4, seed=1)

        def run():
            r = factory().run(RandomDecider(2))
            assert r.ok
            return len(r.env["lib"].registry.events)
        events = benchmark(run)
        assert events > 0

    def test_graph_construction(self, benchmark):
        factory = mixed_stress(lambda m: MSQueue.setup(m, "q", RELACQ),
                               "queue", threads=3, ops_per_thread=4, seed=2)
        result = factory().run(RandomDecider(3))
        lib = result.env["lib"]
        g = benchmark(lib.graph)
        assert len(g.events) > 0


class TestViewOps:
    def test_join_disjoint(self, benchmark):
        a = View({i: i for i in range(1, 40)})
        b = View({i: i for i in range(40, 80)})
        benchmark(a.join, b)

    def test_join_subsumed(self, benchmark):
        a = View({i: i for i in range(1, 80)})
        b = View({i: i for i in range(1, 10)})
        out = benchmark(a.join, b)
        assert out is a

    def test_leq(self, benchmark):
        a = View({i: i for i in range(1, 60)})
        b = View({i: i + 1 for i in range(1, 60)})
        assert benchmark(a.leq, b)


class TestExplorationThroughput:
    def test_exhaustive_enumeration(self, benchmark):
        def setup(mem):
            return {"x": mem.alloc("x", 0)}

        def w(env):
            yield Store(env["x"], 1, RLX)
            yield Store(env["x"], 2, RLX)

        def r(env):
            yield Load(env["x"], RLX)
            yield Load(env["x"], RLX)

        def run():
            return sum(1 for _ in explore_all(
                lambda: Program(setup, [w, r])))
        count = benchmark(run)
        assert count > 10
