"""Execution-space exploration: exhaustive (stateless DFS) and randomized.

The exhaustive explorer enumerates the complete decision tree of a bounded
program by *replay*: each execution is rerun from scratch under a
`repro.rmc.scheduler.PrefixDecider`; the recorded trace of
``(arity, chosen)`` pairs identifies the rightmost decision with an untried
sibling, which becomes the next prefix.  This is classic stateless model
checking (generators cannot be snapshotted, so replay is the honest way).

It plays the role the Coq proofs play in the paper: instead of proving a
consistency condition for *all* executions, we enumerate all executions of
bounded scenarios and check the condition on each.  Randomized exploration
scales the same checks to larger scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List

from .machine import ExecutionResult
from .program import Program
from .scheduler import FixedDecider, PrefixDecider, RandomDecider

ProgramFactory = Callable[[], Program]


@dataclass
class ExplorationStats:
    """Aggregate statistics of one exploration run."""

    executions: int = 0
    complete: int = 0
    truncated: int = 0
    raced: int = 0
    steps: int = 0
    exhausted: bool = False  # True iff the whole tree was enumerated
    race_traces: List[List] = field(default_factory=list)

    def record(self, result: ExecutionResult) -> None:
        self.executions += 1
        self.steps += result.steps
        if result.race is not None:
            self.raced += 1
            if len(self.race_traces) < 5:
                self.race_traces.append(list(result.trace))
        elif result.truncated:
            self.truncated += 1
        else:
            self.complete += 1


def explore_all(
    factory: ProgramFactory,
    max_steps: int = 2_000,
    max_executions: int = 200_000,
    race_detection: bool = True,
    sc_upgrade: bool = False,
) -> Iterator[ExecutionResult]:
    """Enumerate every execution of the (bounded) program, by replay.

    Programs with unbounded spin loops must be loop-bounded for exhaustive
    mode; runs exceeding ``max_steps`` come back with ``truncated=True`` and
    their subtree is still backtracked normally.
    """
    prefix: List[int] = []
    executions = 0
    while executions < max_executions:
        decider = PrefixDecider(prefix)
        result = factory().run(decider, max_steps=max_steps,
                               race_detection=race_detection,
                               sc_upgrade=sc_upgrade)
        executions += 1
        yield result
        trace = decider.trace
        j = len(trace) - 1
        while j >= 0 and trace[j][1] + 1 >= trace[j][0]:
            j -= 1
        if j < 0:
            return
        prefix = [trace[i][1] for i in range(j)] + [trace[j][1] + 1]


def explore_random(
    factory: ProgramFactory,
    runs: int,
    seed: int = 0,
    max_steps: int = 100_000,
    race_detection: bool = True,
    sc_upgrade: bool = False,
) -> Iterator[ExecutionResult]:
    """Run ``runs`` independent executions with seeded random decisions."""
    for i in range(runs):
        decider = RandomDecider(seed + i)
        yield factory().run(decider, max_steps=max_steps,
                            race_detection=race_detection,
                            sc_upgrade=sc_upgrade)


def check_all(
    factory: ProgramFactory,
    check: Callable[[ExecutionResult], None],
    exhaustive: bool = True,
    runs: int = 500,
    seed: int = 0,
    max_steps: int = 2_000,
    max_executions: int = 200_000,
) -> ExplorationStats:
    """Explore and apply ``check`` to every non-raced complete execution.

    ``check`` should raise (e.g. ``AssertionError``) on a violation; the
    offending execution's decision trace is replayable with
    :func:`replay`.
    """
    stats = ExplorationStats()
    if exhaustive:
        source = explore_all(factory, max_steps=max_steps,
                             max_executions=max_executions)
    else:
        source = explore_random(factory, runs=runs, seed=seed,
                                max_steps=max_steps)
    exhausted = True
    for result in source:
        stats.record(result)
        if result.ok:
            check(result)
        if stats.executions >= max_executions:
            exhausted = False
            break
    stats.exhausted = exhaustive and exhausted
    return stats


def replay(factory: ProgramFactory, trace, max_steps: int = 100_000,
           race_detection: bool = True) -> ExecutionResult:
    """Re-execute a recorded decision trace (counterexample replay)."""
    return factory().run(FixedDecider(trace), max_steps=max_steps,
                         race_detection=race_detection)
