"""Deterministic fault injection: the engine's own adversary.

The resilience machinery (watchdogs, budgets, durable logs) is verified
the same way the repo verifies memory-model executions — by *replaying a
decision deterministically*.  A :class:`FaultPlan` is a seeded, explicit
list of faults bound to named **sites**; instrumented code calls
:func:`fault_point` / :func:`mutate_blob` / :func:`torn_text` at those
sites, and a fault fires exactly when its coordinates match:

====================  =====================================================
site                  instrumented where
====================  =====================================================
``worker.explore``    once per execution inside a shard (crash/hang/raise)
``worker.result``     the serialized shard result before it crosses the
                      pipe back to the driver (corrupt)
``hedge.slow_worker``  the top of a shard exploration: an injected
                      per-shard delay, the straggler a hedged dispatch
                      must rescue (delay; `repro.engine.hedge`)
``pool.flip_result_byte``  the serialized shard result *before* its CRC
                      is taken — a lying executor whose corruption is
                      framing-consistent, catchable only by the audit
                      layer (corrupt; `repro.engine.audit`)
``checkpoint.append``  each checkpoint JSONL line (torn write)
``corpus.append``     each corpus JSONL line (torn write)
``net.send.<type>``   each distributed-protocol message send
                      (drop/delay/sever/duplicate; `repro.engine.dist`)
====================  =====================================================

Coordinates are ``(shard, attempt, exec_at)``; ``None`` matches anything,
so ``Fault("worker.explore", "crash", shard=1, attempt=1)`` crashes the
worker that runs shard 1's *first* attempt and leaves the retry alone —
which is precisely what makes chaos runs converge.  ``prob`` offers a
seeded probabilistic alternative (the decision is a hash of the plan seed
and the coordinates, so it is identical on every rerun).

Plans cross the process boundary through the ``REPRO_FAULT_PLAN``
environment variable: ``fork`` workers inherit it with the address space
and ``spawn`` workers inherit it with the environment, so the same plan
drives every process of a run.  With no plan active every hook is a
single dict lookup.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Environment variable carrying the active plan across processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code of an injected hard crash (distinguishable in waitpid logs).
CRASH_EXIT_CODE = 86

KINDS = ("crash", "hang", "raise", "corrupt", "torn",
         # Network faults, consulted by the distributed transport's send
         # path (`repro.engine.dist.protocol`): a message silently lost,
         # delayed in flight, the whole connection cut, or delivered
         # twice.
         "drop", "delay", "sever", "duplicate",
         # Disk faults, consulted by the durable I/O layer
         # (`repro.engine.vfs`) at every writer site: the write fails
         # with the named errno (optionally after `after_bytes` landed,
         # modelling a disk filling mid-record), or the durability
         # barrier is silently swallowed.
         "enospc", "eio", "fsync_drop")

#: The kinds `repro.engine.vfs` interprets (plus "torn", shared with the
#: legacy line-level shim).
IO_KINDS = ("torn", "enospc", "eio", "fsync_drop")


class FaultInjected(RuntimeError):
    """The transient exception a ``raise`` fault throws."""


@dataclass(frozen=True)
class Fault:
    """One fault: a kind bound to a site and optional coordinates."""

    site: str
    kind: str  # one of KINDS
    shard: Optional[int] = None
    attempt: Optional[int] = None
    exec_at: Optional[int] = None
    #: Seeded firing probability, an alternative to exact coordinates.
    prob: Optional[float] = None
    hang_seconds: float = 3600.0
    #: How long a ``delay`` network fault holds a message.
    delay_seconds: float = 0.1
    #: ``torn`` disk faults: byte offset to cut the record at
    #: (None = halve it, the legacy shape).
    torn_at: Optional[int] = None
    #: ``enospc``/``eio`` faults: bytes that land before the failure
    #: (None/0 = fail before writing anything).
    after_bytes: Optional[int] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(self, site: str, shard: Optional[int],
                attempt: Optional[int], execs: Optional[int],
                seed: int) -> bool:
        if site != self.site:
            return False
        for want, got in ((self.shard, shard), (self.attempt, attempt),
                          (self.exec_at, execs)):
            if want is not None and want != got:
                return False
        if self.prob is not None:
            digest = hashlib.sha256(
                f"{seed}:{site}:{shard}:{attempt}:{execs}"
                .encode("utf-8")).digest()
            draw = int.from_bytes(digest[:4], "big") / 2 ** 32
            if draw >= self.prob:
                return False
        return True

    def to_json(self) -> Dict:
        out = {"site": self.site, "kind": self.kind}
        for key in ("shard", "attempt", "exec_at", "prob", "torn_at",
                    "after_bytes"):
            val = getattr(self, key)
            if val is not None:
                out[key] = val
        if self.hang_seconds != 3600.0:
            out["hang_seconds"] = self.hang_seconds
        if self.delay_seconds != 0.1:
            out["delay_seconds"] = self.delay_seconds
        return out

    @staticmethod
    def from_json(data: Dict) -> "Fault":
        return Fault(site=data["site"], kind=data["kind"],
                     shard=data.get("shard"), attempt=data.get("attempt"),
                     exec_at=data.get("exec_at"), prob=data.get("prob"),
                     hang_seconds=data.get("hang_seconds", 3600.0),
                     delay_seconds=data.get("delay_seconds", 0.1),
                     torn_at=data.get("torn_at"),
                     after_bytes=data.get("after_bytes"))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of faults for one chaos run."""

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def encode(self) -> str:
        return json.dumps({"seed": self.seed,
                           "faults": [f.to_json() for f in self.faults]},
                          sort_keys=True)

    @staticmethod
    def decode(text: str) -> "FaultPlan":
        data = json.loads(text)
        return FaultPlan(faults=tuple(Fault.from_json(f)
                                      for f in data.get("faults", [])),
                         seed=data.get("seed", 0))

    def activate(self) -> None:
        """Install the plan for this process and every child it starts."""
        os.environ[FAULT_PLAN_ENV] = self.encode()
        # Activation marks the start of a fresh chaos run: one-shot
        # accounting and per-site sequences reset even when the plan
        # encodes identically to the previous one.
        _CACHE["raw"] = None

    @staticmethod
    def deactivate() -> None:
        os.environ.pop(FAULT_PLAN_ENV, None)

    def __enter__(self) -> "FaultPlan":
        self.activate()
        return self

    def __exit__(self, *exc) -> None:
        self.deactivate()


# Parsed-plan cache and fired-fault set, both keyed to the raw env value
# so switching plans (or deactivating) resets one-shot accounting.
_CACHE: Dict[str, object] = {"raw": None, "plan": None}
_FIRED: set = set()


def _active_plan() -> Optional[FaultPlan]:
    raw = os.environ.get(FAULT_PLAN_ENV)
    if raw is None:
        return None
    if raw != _CACHE["raw"]:
        _CACHE["raw"] = raw
        _CACHE["plan"] = FaultPlan.decode(raw)
        _FIRED.clear()
        _IO_SEQ.clear()
    return _CACHE["plan"]


def _iter_matching(site: str, kinds: Tuple[str, ...],
                   shard: Optional[int], attempt: Optional[int],
                   execs: Optional[int]):
    plan = _active_plan()
    if plan is None:
        return
    for idx, fault in enumerate(plan.faults):
        if fault.kind not in kinds:
            continue
        if not fault.matches(site, shard, attempt, execs, plan.seed):
            continue
        key = (idx, shard, attempt, execs)
        if key in _FIRED:
            continue
        _FIRED.add(key)
        yield plan, fault


def fault_point(site: str, shard: Optional[int] = None,
                attempt: Optional[int] = None,
                execs: Optional[int] = None) -> None:
    """Crash, hang, or raise here if the active plan says so."""
    for _plan, fault in _iter_matching(site, ("crash", "hang", "raise"),
                                       shard, attempt, execs):
        if fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if fault.kind == "hang":
            # A plain sleep: killable by SIGKILL, which is exactly how
            # the watchdog is expected to clear it.
            time.sleep(fault.hang_seconds)
            return
        raise FaultInjected(f"injected transient fault at {site} "
                            f"(shard={shard}, attempt={attempt})")


def mutate_blob(site: str, blob: str, shard: Optional[int] = None,
                attempt: Optional[int] = None) -> str:
    """Deterministically corrupt ``blob`` if a ``corrupt`` fault matches."""
    for plan, _fault in _iter_matching(site, ("corrupt",), shard, attempt,
                                       None):
        digest = hashlib.sha256(
            f"{plan.seed}:{site}:{shard}:{attempt}".encode()).digest()
        pos = digest[0] % max(len(blob), 1)
        flipped = chr((ord(blob[pos]) ^ 0x20) or 0x21)
        blob = blob[:pos] + flipped + blob[pos + 1:]
    return blob


def injected_delay(site: str, shard: Optional[int] = None,
                   attempt: Optional[int] = None) -> float:
    """Total seconds of ``delay`` faults matching this site (0.0 = none).

    The compute-side sibling of the network ``delay`` kind: the
    ``hedge.slow_worker`` site calls this at the top of a shard
    exploration and sleeps the returned amount *in heartbeat-sized
    chunks* — a straggler, not a hung worker — so the hedging layer
    (`repro.engine.hedge`), not the watchdog, is what must rescue the
    shard.  One-shot per coordinates, like every exact fault: the
    hedged duplicate runs under a different attempt number and is never
    slowed.
    """
    total = 0.0
    for _plan, fault in _iter_matching(site, ("delay",), shard, attempt,
                                       None):
        total += fault.delay_seconds
    return total


def flip_result_digit(site: str, blob: str, shard: Optional[int] = None,
                      attempt: Optional[int] = None) -> str:
    """Rotate one digit of the serialized ``executions`` count.

    The silent-corruption fault: unlike :func:`mutate_blob`'s character
    flip (which breaks the JSON and is caught by the CRC/decode path),
    this keeps the blob structurally valid and fires *before* the CRC
    is taken — modelling an executor that computed the wrong answer and
    framed it honestly.  Nothing on the ingest path can object; only a
    fingerprint comparison against a trusted re-execution
    (`repro.engine.audit`) catches it.
    """
    for _plan, _fault in _iter_matching(site, ("corrupt",), shard, attempt,
                                        None):
        marker = '"executions": '
        start = blob.find(marker)
        if start < 0:
            marker = '"executions":'
            start = blob.find(marker)
        if start < 0:
            continue
        pos = start + len(marker)
        end = pos
        while end < len(blob) and blob[end].isdigit():
            end += 1
        if end == pos:
            continue
        rotated = str((int(blob[end - 1]) + 1) % 10)
        blob = blob[:end - 1] + rotated + blob[end:]
    return blob


def net_fault_actions(site: str, shard: Optional[int] = None,
                      attempt: Optional[int] = None,
                      seq: Optional[int] = None) -> list:
    """Network faults matching this message send, in plan order.

    ``site`` is ``net.send.<message type>``; ``shard``/``attempt`` are
    the lease coordinates of the message (None for messages not tied to
    a shard) and ``seq`` is the connection's send sequence number, which
    lets seeded-probability faults fire independently per message.
    Returns the matching `Fault` objects so the transport can read
    ``delay_seconds``; the caller interprets the kinds (drop / delay /
    sever / duplicate).

    One-shot accounting deliberately ignores ``seq`` for
    exact-coordinate faults: a retransmission of the same lease's
    message arrives with a fresh sequence number, and if that opened a
    fresh one-shot slot a "drop this result" fault would drop every
    resend too — the recovery it exists to exercise could never win.
    Seeded-probability faults keep ``seq`` in the key so each message
    rolls its own dice.
    """
    plan = _active_plan()
    if plan is None:
        return []
    actions = []
    for idx, fault in enumerate(plan.faults):
        if fault.kind not in ("drop", "delay", "sever", "duplicate"):
            continue
        if not fault.matches(site, shard, attempt, seq, plan.seed):
            continue
        key = (idx, site, shard, attempt) if fault.prob is None \
            else (idx, site, shard, attempt, seq)
        if key in _FIRED:
            continue
        _FIRED.add(key)
        actions.append(fault)
    return actions


#: Per-site call sequence for disk-fault probability rolls (reset with
#: the plan cache when the active plan changes).
_IO_SEQ: Dict[str, int] = {}


def io_fault_actions(site: str) -> list:
    """Disk faults matching this durable write, in plan order.

    Consulted by `repro.engine.vfs` on every append / whole-file write.
    Same one-shot discipline as the network shim: an exact-coordinate
    fault fires once per plan (tear *this* record, then let recovery
    win), while a seeded-probability fault rolls per call — the call
    sequence number stands in for message ``seq`` so each write rolls
    its own dice deterministically.
    """
    plan = _active_plan()
    if plan is None:
        return []
    seq = _IO_SEQ.get(site, 0) + 1
    _IO_SEQ[site] = seq
    actions = []
    for idx, fault in enumerate(plan.faults):
        if fault.kind not in IO_KINDS:
            continue
        if not fault.matches(site, None, None,
                             seq if fault.prob is not None else None,
                             plan.seed):
            continue
        key = (idx, site) if fault.prob is None else (idx, site, seq)
        if key in _FIRED:
            continue
        _FIRED.add(key)
        actions.append(fault)
    return actions


def torn_text(site: str, text: str) -> str:
    """Halve ``text`` (a JSONL line) if a ``torn`` fault matches — the
    on-disk shape of a write cut off mid-crash.  The newline is kept so
    only this one record is damaged under later appends."""
    for _plan, _fault in _iter_matching(site, ("torn",), None, None, None):
        return text[:max(len(text) // 2, 1)].rstrip("\n") + "\n"
    return text
