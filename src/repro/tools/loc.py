"""Source line counting for the mechanization-effort table (E7).

The paper reports proof sizes (KLOC of Coq) per library and client; the
reproduction's analogue is implementation + checking code size plus
measured checking effort.  This module counts non-blank, non-comment
source lines (docstrings included in the "doc" tally, not in "code").
"""

from __future__ import annotations

import io
import os
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass
class LocCount:
    code: int = 0
    doc: int = 0
    blank: int = 0
    total: int = 0


def count_file(path: str) -> LocCount:
    """Count code/doc/blank lines of one Python file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines = source.splitlines()
    out = LocCount(total=len(lines))
    doc_or_comment_lines = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type in (tokenize.COMMENT, tokenize.STRING):
                # Strings at statement level are docstrings; expression
                # strings inside code are rare in this codebase, so
                # attributing multi-line strings to "doc" is accurate
                # enough for the effort table.
                if tok.type == tokenize.COMMENT or "\n" in tok.string or \
                        tok.string.startswith(('"""', "'''")):
                    for ln in range(tok.start[0], tok.end[0] + 1):
                        doc_or_comment_lines.add(ln)
    except tokenize.TokenError:  # pragma: no cover - malformed source
        pass
    for i, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            out.blank += 1
        elif i in doc_or_comment_lines and (
                stripped.startswith(("#", '"""', "'''", '"', "'"))
                or i not in _code_line_guess(lines, i)):
            out.doc += 1
        else:
            out.code += 1
    return out


def _code_line_guess(_lines, i) -> Iterable[int]:
    # A line inside a docstring region that *also* starts code is rare;
    # keep the simple classification.
    return ()


def count_tree(root: str) -> Dict[str, LocCount]:
    """Per-file counts for every ``.py`` under ``root``."""
    out: Dict[str, LocCount] = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for fn in sorted(filenames):
            if fn.endswith(".py"):
                path = os.path.join(dirpath, fn)
                out[os.path.relpath(path, root)] = count_file(path)
    return out


def summarize(counts: Dict[str, LocCount]) -> LocCount:
    total = LocCount()
    for c in counts.values():
        total.code += c.code
        total.doc += c.doc
        total.blank += c.blank
        total.total += c.total
    return total
