"""The parallel exploration driver: shard, fan out, merge, persist.

`run_scenario` supersedes the serial ``check_scenario`` loop while
keeping `explore_all`/`explore_random` as the single-worker core:

1. **plan** — split the decision tree (exhaustive) or seed range
   (randomized) into disjoint shards (`repro.engine.shard`);
2. **resume** — drop shards already completed by an identical earlier
   run, recovered from the checkpoint log (`repro.engine.checkpoint`);
3. **explore** — run the remaining shards, inline for one worker or on a
   ``ProcessPoolExecutor`` for many; a worker crash or poisoned shard is
   requeued with bounded retries instead of losing the subtree;
4. **merge** — fold per-shard partial reports *in shard order*
   (`repro.engine.merge`), reproducing the serial report exactly
   (modulo timing); persist counterexamples to the corpus
   (`repro.engine.corpus`).

Workers receive the scenario through the pool initializer: under the
``fork`` start method the closure-laden `Scenario` object is inherited
by memory, and under ``spawn`` the registry spec is rebuilt instead —
shard descriptions and shard results are the only things pickled.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..checking.runner import (Scenario, ScenarioReport, StyleTally,
                               record_result)
from ..core.spec_styles import SpecStyle
from .checkpoint import CheckpointWriter, load_completed, run_fingerprint
from .corpus import CORPUS_CAP, CorpusEntry, CorpusSink, append_entries
from .merge import merge_reports
from .registry import ScenarioSpec, build_scenario
from .shard import (SHARDS_PER_WORKER, Shard, iter_shard,
                    plan_exhaustive_shards, plan_random_shards)
from .telemetry import ProgressReporter, TelemetrySummary


@dataclass
class EngineParams:
    """Everything that shapes one engine run."""

    styles: Tuple[SpecStyle, ...] = (SpecStyle.LAT_HB,)
    exhaustive: bool = False
    runs: int = 300
    seed: int = 0
    max_steps: int = 20_000
    #: Execution cap; in parallel exhaustive mode it bounds each shard.
    max_executions: int = 100_000
    workers: int = 1
    #: Max prefix length for exhaustive splitting (None = default).
    split_depth: Optional[int] = None
    #: Shard-count target (None = SHARDS_PER_WORKER per worker).
    target_shards: Optional[int] = None
    checkpoint_path: Optional[str] = None
    corpus_path: Optional[str] = None
    corpus_cap: int = CORPUS_CAP
    progress: bool = False
    max_retries: int = 2
    #: Seconds without any shard completing before the pool is recycled
    #: and unfinished shards requeued (None = wait forever).
    shard_timeout: Optional[float] = None

    def fingerprint_json(self) -> Dict:
        """The parameters that determine exploration results."""
        return {
            "styles": [s.name for s in self.styles],
            "exhaustive": self.exhaustive,
            "runs": self.runs,
            "seed": self.seed,
            "max_steps": self.max_steps,
            "max_executions": self.max_executions,
        }


@dataclass
class EngineResult:
    """A merged report plus the run's mechanics."""

    report: ScenarioReport
    telemetry: TelemetrySummary
    shards: List[Shard] = field(default_factory=list)
    corpus_entries: List[CorpusEntry] = field(default_factory=list)


class ShardFailed(RuntimeError):
    """A shard kept failing after its retry budget was spent."""


# ----------------------------------------------------------------------
# Per-shard exploration (runs inline or inside a worker process)
# ----------------------------------------------------------------------

def _explore_shard(scenario: Scenario, spec: Optional[ScenarioSpec],
                   shard: Shard, params: EngineParams) \
        -> Tuple[ScenarioReport, List[CorpusEntry]]:
    report = ScenarioReport(scenario=scenario.name)
    report.styles = {s: StyleTally() for s in params.styles}
    sink = CorpusSink(scenario.name, spec, params.max_steps,
                      cap=params.corpus_cap)
    start = time.perf_counter()
    for result in iter_shard(scenario.factory, shard, params.max_steps,
                             params.max_executions):
        record_result(report, scenario, result, params.styles, sink)
        if report.executions >= params.max_executions:
            break
    report.exhausted = (params.exhaustive
                        and report.executions < params.max_executions)
    report.seconds = time.perf_counter() - start
    return report, sink.entries


_WORKER_STATE: Dict = {}


def _init_worker(scenario: Optional[Scenario],
                 spec: Optional[ScenarioSpec],
                 params: EngineParams) -> None:
    if scenario is None:
        if spec is None:
            raise RuntimeError("worker started without scenario or spec")
        scenario = build_scenario(spec)
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["params"] = params


def _run_shard_task(shard_id: int, shard: Shard):
    report, entries = _explore_shard(
        _WORKER_STATE["scenario"], _WORKER_STATE["spec"], shard,
        _WORKER_STATE["params"])
    return shard_id, report, entries, os.getpid()


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------

def plan_shards(scenario: Scenario, params: EngineParams) -> List[Shard]:
    """Deterministically split the run into disjoint work items."""
    if params.target_shards is not None:
        target = max(1, params.target_shards)
    else:
        target = max(1, params.workers) * SHARDS_PER_WORKER
        if params.workers <= 1 and params.checkpoint_path is None:
            target = 1  # no pool, no resume: skip planning probes
        elif params.checkpoint_path is not None:
            target = max(target, 2 * SHARDS_PER_WORKER)
    if params.exhaustive:
        if target == 1:
            return [Shard(kind="prefix")]
        kwargs = {}
        if params.split_depth is not None:
            kwargs["max_split_depth"] = params.split_depth
        return plan_exhaustive_shards(scenario.factory, target,
                                      params.max_steps, **kwargs)
    return plan_random_shards(params.runs, params.seed, target)


def run_scenario(scenario: Optional[Scenario], params: EngineParams,
                 spec: Optional[ScenarioSpec] = None) -> EngineResult:
    """Explore + check one scenario with the full engine machinery."""
    if scenario is None:
        if spec is None:
            raise ValueError("need a scenario or a registry spec")
        scenario = build_scenario(spec)
    shards = plan_shards(scenario, params)
    fingerprint = run_fingerprint(scenario.name, spec,
                                  params.fingerprint_json(), shards)

    results: Dict[int, Tuple[ScenarioReport, List[CorpusEntry]]] = {}
    markers: set = set()
    if params.checkpoint_path:
        done, markers = load_completed(params.checkpoint_path, fingerprint)
        for sid, (report, entries) in done.items():
            if 0 <= sid < len(shards):
                results[sid] = (report, entries)

    reporter = ProgressReporter(total_shards=len(shards),
                                enabled=params.progress,
                                label=f"engine:{scenario.name}")
    for report, _entries in results.values():
        reporter.on_resumed(report.executions, report.steps)

    writer = CheckpointWriter(params.checkpoint_path, fingerprint) \
        if params.checkpoint_path else None
    pending = [(sid, shard) for sid, shard in enumerate(shards)
               if sid not in results]

    def complete(sid: int, report: ScenarioReport,
                 entries: List[CorpusEntry], pid: int) -> None:
        results[sid] = (report, entries)
        if writer is not None:
            writer.write_shard(sid, report, entries)
        reporter.on_shard_done(sid, pid, report.executions, report.steps)

    if params.workers > 1 and len(pending) > 1:
        _run_pool(scenario, spec, params, pending, complete, reporter)
    else:
        _run_inline(scenario, spec, params, pending, complete, reporter)

    telemetry = reporter.finish()
    ordered = sorted(results)
    report = merge_reports(scenario.name,
                           (results[sid][0] for sid in ordered),
                           params.exhaustive)
    entries: List[CorpusEntry] = []
    for sid in ordered:
        entries.extend(results[sid][1])
    del entries[params.corpus_cap:]
    if params.corpus_path and "corpus_flushed" not in markers:
        append_entries(params.corpus_path, entries)
        if writer is not None:
            writer.write_marker("corpus_flushed")
    return EngineResult(report=report, telemetry=telemetry, shards=shards,
                        corpus_entries=entries)


def _run_inline(scenario, spec, params, pending, complete, reporter) -> None:
    for sid, shard in pending:
        attempt = 1
        while True:
            try:
                report, entries = _explore_shard(scenario, spec, shard,
                                                 params)
                break
            except Exception as err:  # noqa: BLE001 — requeue any failure
                reporter.on_retry(sid, attempt, repr(err))
                attempt += 1
                if attempt > params.max_retries + 1:
                    raise ShardFailed(
                        f"shard {sid} ({shard}) failed "
                        f"{params.max_retries + 1} times: {err!r}") from err
        complete(sid, report, entries, os.getpid())


def _make_executor(scenario, spec, params, n_tasks):
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        ctx = multiprocessing.get_context("fork")
        init_scenario = scenario  # inherited by memory, never pickled
    else:  # spawn-only platform: workers rebuild from the registry
        if spec is None:
            return None
        ctx = multiprocessing.get_context("spawn")
        init_scenario = None
    return ProcessPoolExecutor(
        max_workers=min(params.workers, max(n_tasks, 1)), mp_context=ctx,
        initializer=_init_worker, initargs=(init_scenario, spec, params))


def _run_pool(scenario, spec, params, pending, complete, reporter) -> None:
    executor = _make_executor(scenario, spec, params, len(pending))
    if executor is None:  # cannot ship the scenario to workers
        _run_inline(scenario, spec, params, pending, complete, reporter)
        return
    shard_by_id = dict(pending)
    attempts = {sid: 0 for sid, _ in pending}
    queue = [sid for sid, _ in pending]
    futures = {}

    def submit(sid: int) -> None:
        attempts[sid] += 1
        futures[executor.submit(_run_shard_task, sid,
                                shard_by_id[sid])] = sid

    def recycle_pool(reason: str) -> None:
        nonlocal executor, futures
        lost = sorted(futures.values())
        executor.shutdown(wait=False, cancel_futures=True)
        futures = {}
        executor = _make_executor(scenario, spec, params, len(lost))
        for sid in lost:
            reporter.on_retry(sid, attempts[sid], reason)
            if attempts[sid] > params.max_retries:
                raise ShardFailed(
                    f"shard {sid} ({shard_by_id[sid]}) failed "
                    f"{attempts[sid]} times: {reason}")
            submit(sid)

    try:
        for sid in queue:
            submit(sid)
        while futures:
            done, _ = wait(list(futures), timeout=params.shard_timeout,
                           return_when=FIRST_COMPLETED)
            if not done:  # stalled: recycle the pool, requeue in-flight
                recycle_pool(f"no completion within "
                             f"{params.shard_timeout}s")
                continue
            for fut in done:
                sid = futures.pop(fut)
                try:
                    rid, report, entries, pid = fut.result()
                except BrokenExecutor:
                    # The dead worker also took this future's shard down;
                    # recycle requeues the rest, then requeue this one.
                    reporter.on_retry(sid, attempts[sid],
                                      "worker process died")
                    if attempts[sid] > params.max_retries:
                        raise ShardFailed(
                            f"shard {sid} ({shard_by_id[sid]}) failed "
                            f"{attempts[sid]} times: worker process died")
                    recycle_pool("worker process died")
                    submit(sid)
                    break
                except Exception as err:  # noqa: BLE001 — requeue
                    reporter.on_retry(sid, attempts[sid], repr(err))
                    if attempts[sid] > params.max_retries:
                        raise ShardFailed(
                            f"shard {sid} ({shard_by_id[sid]}) failed "
                            f"{attempts[sid]} times: {err!r}") from err
                    submit(sid)
                else:
                    complete(rid, report, entries, pid)
    finally:
        # Join workers on the way out; a broken/hung pool was already shut
        # down non-blocking by recycle_pool.
        executor.shutdown(wait=True, cancel_futures=True)
