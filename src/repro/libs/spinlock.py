"""A test-and-set spinlock: the strongly synchronized baseline primitive.

Acquire is an acq-rel CAS loop; release is a release store.  The RMW
view-carrying of the machine gives the usual lock protocol: each acquirer
synchronizes with every previous critical section, so non-atomic data
guarded by the lock is race-free (the race detector certifies this in the
tests).
"""

from __future__ import annotations

from ..rmc.memory import Memory
from ..rmc.modes import ACQ_REL, REL
from ..rmc.ops import Cas, Store


class Spinlock:
    """A spinlock over one atomic location (0 = free, 1 = held)."""

    def __init__(self, mem: Memory, name: str = "lock"):
        self.flag = mem.alloc(name, 0)

    @classmethod
    def setup(cls, mem: Memory, name: str = "lock") -> "Spinlock":
        return cls(mem, name)

    def acquire(self):
        """Spin until the lock is taken."""
        while True:
            ok, _ = yield Cas(self.flag, 0, 1, ACQ_REL)
            if ok:
                return

    def try_acquire(self):
        """One attempt; ``True`` iff the lock was taken."""
        ok, _ = yield Cas(self.flag, 0, 1, ACQ_REL)
        return ok

    def release(self):
        """Release the lock (release store)."""
        yield Store(self.flag, 0, REL)


class TicketLock:
    """A FIFO ticket lock: FAA hands out tickets, ``owner`` calls them.

    Fairness is structural — threads enter in ticket order — making it
    the fair counterpart to the test-and-set :class:`Spinlock` (tests
    check both mutual exclusion and FIFO admission).
    """

    def __init__(self, mem: Memory, name: str = "ticket"):
        self.next_ticket = mem.alloc(f"{name}.next", 0)
        self.owner = mem.alloc(f"{name}.owner", 0)

    @classmethod
    def setup(cls, mem: Memory, name: str = "ticket") -> "TicketLock":
        return cls(mem, name)

    def acquire(self):
        """Take a ticket and spin until called; returns the ticket."""
        from ..rmc.ops import Faa, Load
        from ..rmc.modes import ACQ, RLX
        ticket = yield Faa(self.next_ticket, 1, RLX)
        while True:
            o = yield Load(self.owner, ACQ)
            if o == ticket:
                return ticket

    def release(self, ticket: int):
        """Admit the next ticket (release store)."""
        yield Store(self.owner, ticket + 1, REL)


class PetersonLock:
    """Peterson's 2-thread mutual-exclusion lock.

    The textbook algorithm needs sequential consistency: each side sets
    its flag and must then *see* the other's flag (a store-buffering
    shape).  ``mode=SC`` (default) is correct; constructing it with
    ``mode=REL``-style release/acquire is the classic broken variant —
    both threads can enter, and the race detector catches the resulting
    unprotected non-atomic accesses (tests demonstrate both).
    """

    def __init__(self, mem: Memory, name: str = "peterson", sc: bool = True):
        self.flags = [mem.alloc(f"{name}.flag[0]", 0),
                      mem.alloc(f"{name}.flag[1]", 0)]
        self.turn = mem.alloc(f"{name}.turn", 0)
        self.sc = sc

    @classmethod
    def setup(cls, mem: Memory, name: str = "peterson",
              sc: bool = True) -> "PetersonLock":
        return cls(mem, name, sc=sc)

    def acquire(self, me: int):
        """Enter the critical section as party ``me`` (0 or 1)."""
        from ..rmc.ops import Load
        from ..rmc.modes import ACQ, SC
        other = 1 - me
        wmode = SC if self.sc else REL
        rmode = SC if self.sc else ACQ
        yield Store(self.flags[me], 1, wmode)
        yield Store(self.turn, other, wmode)
        while True:
            f = yield Load(self.flags[other], rmode)
            if f == 0:
                return
            t = yield Load(self.turn, rmode)
            if t == me:
                return

    def release(self, me: int):
        from ..rmc.modes import SC
        yield Store(self.flags[me], 0, SC if self.sc else REL)
