"""Execution introspection: human-readable dumps of runs and graphs.

Downstream users debugging a failed check need to see what happened:
:func:`format_execution` renders an `repro.rmc.machine.ExecutionResult`
(thread returns, per-location histories with released views), and
:func:`format_graph` renders an event graph (events in commit order with
kinds, threads, lhb predecessors, and ``so`` edges).  Both are plain
strings — print them, log them, diff them.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.graph import Graph
from ..rmc.machine import ExecutionResult


def format_execution(result: ExecutionResult,
                     max_history: int = 12) -> str:
    """Render one execution: status, returns, and location histories."""
    lines: List[str] = []
    status = ("RACE: " + str(result.race) if result.race else
              "TRUNCATED" if result.truncated else "complete")
    lines.append(f"execution: {status}, {result.steps} steps")
    for tid in sorted(result.returns):
        lines.append(f"  thread {tid} returned {result.returns[tid]!r}")
    for loc, cell in sorted(result.memory.locations.items()):
        if len(cell.history) <= 1:
            continue  # untouched location
        lines.append(f"  {cell.name}#{loc}:")
        shown = cell.history[:max_history]
        for msg in shown:
            writer = "init" if msg.writer is None else f"t{msg.writer}"
            lines.append(f"    @{msg.ts} = {msg.val!r} by {writer}"
                         f"{' (na)' if msg.is_na else ''}")
        if len(cell.history) > max_history:
            lines.append(f"    … {len(cell.history) - max_history} more")
    return "\n".join(lines)


def format_graph(graph: Graph, title: str = "graph") -> str:
    """Render an event graph in commit order."""
    lines = [f"{title}: {len(graph.events)} events, "
             f"{len(graph.so)} so edges"]
    for ev in graph.sorted_events():
        preds = sorted(ev.logview - {ev.eid})
        lines.append(f"  @{ev.commit_index:<4} e{ev.eid:<3} {ev.kind!r:<24}"
                     f" t{ev.thread}  lhb-preds={preds}")
    for a, b in sorted(graph.so):
        lines.append(f"  so: e{a} -> e{b}")
    return "\n".join(lines)


def format_violations(violations, limit: Optional[int] = 10) -> str:
    """Render a violation list (one rule+detail per line)."""
    shown = violations if limit is None else violations[:limit]
    lines = [str(v) for v in shown]
    if limit is not None and len(violations) > limit:
        lines.append(f"… {len(violations) - limit} more")
    return "\n".join(lines) if lines else "(no violations)"
