"""Treiber stack: LIFO semantics, LAT_hb^hist via head modification order."""

import pytest

from repro.core import (EMPTY, SpecStyle, check_style, interp, linearize,
                        respects_lhb)
from repro.libs import FAIL_RACE, TreiberStack
from repro.rmc import Program, RandomDecider, explore_all, explore_random


def prog(threads):
    def setup(mem):
        return {"s": TreiberStack.setup(mem, "s")}
    return lambda: Program(setup, threads)


class TestSequential:
    def test_lifo(self):
        def t(env):
            for v in [1, 2, 3]:
                yield from env["s"].push(v)
            out = []
            for _ in range(4):
                out.append((yield from env["s"].pop()))
            return out
        r = prog([t])().run(RandomDecider(0))
        assert r.ok and r.returns[0] == [3, 2, 1, EMPTY]

    def test_try_ops_single_thread_always_succeed(self):
        def t(env):
            ok = yield from env["s"].try_push(9)
            v = yield from env["s"].try_pop()
            e = yield from env["s"].try_pop()
            return (ok, v, e)
        r = prog([t])().run(RandomDecider(0))
        assert r.returns[0] == (True, 9, EMPTY)

    def test_linearization_matches_commit_semantics(self):
        def t(env):
            yield from env["s"].push(1)
            yield from env["s"].push(2)
            yield from env["s"].pop()
            yield from env["s"].try_pop()
        r = prog([t])().run(RandomDecider(0))
        s = r.env["s"]
        to = s.linearization()
        assert sorted(to) == sorted(s.graph().events)
        assert interp(s.graph(), to, "stack") is not None


def contended_threads():
    def pusher(vals):
        def t(env):
            for v in vals:
                yield from env["s"].push(v)
        return t

    def popper(env):
        out = []
        for _ in range(2):
            out.append((yield from env["s"].pop()))
        return out
    return [pusher([1, 2]), pusher([3, 4]), popper, popper]


class TestConcurrent:
    def test_hist_style_via_head_order(self):
        """§3.3: the head-CAS modification order is a valid linearization
        that respects lhb — no prophecy needed."""
        for r in explore_random(prog(contended_threads()), runs=250, seed=7):
            assert r.ok
            s = r.env["s"]
            g = s.graph()
            res = check_style(g, "stack", SpecStyle.LAT_HB_HIST,
                              to=s.linearization())
            assert res.ok, [str(v) for v in res.violations]

    def test_head_order_agrees_with_search(self):
        for r in explore_random(prog(contended_threads()), runs=40, seed=1):
            s = r.env["s"]
            g = s.graph()
            to = s.linearization()
            assert respects_lhb(g, to)
            assert interp(g, to, "stack") is not None
            assert linearize(g, "stack") is not None

    def test_exhaustive_push_pop_pair(self):
        def pusher(env):
            yield from env["s"].push(1)

        def popper(env):
            return (yield from env["s"].try_pop())
        outcomes = set()
        for r in explore_all(prog([pusher, popper]), max_steps=500):
            assert r.ok
            g = r.env["s"].graph()
            res = check_style(g, "stack", SpecStyle.LAT_HB_HIST,
                              to=r.env["s"].linearization())
            assert res.ok, [str(v) for v in res.violations]
            outcomes.add(r.returns[1])
        assert EMPTY in outcomes and 1 in outcomes

    def test_try_pop_can_lose_race(self):
        def pusher(env):
            yield from env["s"].push(1)
            yield from env["s"].push(2)

        def popper(env):
            return (yield from env["s"].try_pop())
        seen = set()
        for r in explore_random(prog([pusher, popper, popper]),
                                runs=400, seed=13):
            seen.add(r.returns[1])
        assert FAIL_RACE in seen

    def test_no_races(self):
        assert all(r.race is None for r in explore_random(
            prog(contended_threads()), runs=150, seed=17))

    def test_values_conserved(self):
        for r in explore_random(prog(contended_threads()), runs=100, seed=19):
            got = [v for t in (2, 3) for v in r.returns[t] if v is not EMPTY]
            assert len(got) == len(set(got))
            assert set(got) <= {1, 2, 3, 4}


class TestHistNegative:
    def test_corrupted_mo_keys_fail_hist(self):
        """If the recorded head modification order is scrambled, the
        LAT_hb^hist validation rejects the candidate `to` (guards against
        vacuous hist checks)."""
        r = prog(contended_threads())().run(RandomDecider(3))
        assert r.ok
        s = r.env["s"]
        g = s.graph()
        to = s.linearization()
        if len(to) < 3:
            return  # degenerate run; other seeds cover it
        scrambled = list(reversed(to))
        res = check_style(g, "stack", SpecStyle.LAT_HB_HIST, to=scrambled)
        if scrambled != to:
            assert not res.ok
