"""Explorer tests: exhaustiveness, replay fidelity, statistics."""

import itertools

import pytest

from repro.rmc import (RLX, Load, Program, Store, check_all, explore_all,
                       explore_random, replay)


def counter_prog(n_threads):
    def setup(mem):
        return {"x": mem.alloc("x", 0)}

    def t(env):
        yield Store(env["x"], 1, RLX)
    return lambda: Program(setup, [t] * n_threads)


class TestExhaustive:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 6)])
    def test_interleaving_counts_write_only(self, n, expected):
        """n single-write threads have n! schedules (no read choices)."""
        count = sum(1 for _ in explore_all(counter_prog(n)))
        assert count == expected

    def test_read_choices_multiply_executions(self):
        def setup(mem):
            return {"x": mem.alloc("x", 0)}

        def w(env):
            yield Store(env["x"], 1, RLX)

        def r(env):
            return (yield Load(env["x"], RLX))
        # Schedules: 3 orders (w first / r first / interleaved is same as
        # one of those with 2 ops total: actually orders = C(2,1) = 2);
        # when w ran first the read has 2 visible messages.
        results = list(explore_all(lambda: Program(setup, [w, r])))
        reads = sorted(res.returns[1] for res in results)
        assert reads == [0, 0, 1]

    def test_every_execution_is_distinct_trace(self):
        traces = [tuple(r.trace) for r in explore_all(counter_prog(3))]
        assert len(traces) == len(set(traces))

    def test_max_executions_caps(self):
        count = sum(1 for _ in explore_all(counter_prog(3),
                                           max_executions=4))
        assert count == 4

    def test_truncated_subtrees_are_backtracked(self):
        def setup(mem):
            return {"x": mem.alloc("x", 0)}

        def spin(env):
            while (yield Load(env["x"], RLX)) == 0:
                pass

        def w(env):
            yield Store(env["x"], 1, RLX)
        results = list(explore_all(lambda: Program(setup, [spin, w]),
                                   max_steps=12, max_executions=5_000))
        assert any(r.truncated for r in results)
        assert any(r.ok for r in results)


class TestRandom:
    def test_seeded_reproducibility(self):
        a = [r.returns for r in explore_random(counter_prog(3), 20, seed=5)]
        b = [r.returns for r in explore_random(counter_prog(3), 20, seed=5)]
        assert a == b

    def test_run_count(self):
        assert sum(1 for _ in explore_random(counter_prog(2), 17)) == 17


class TestReplay:
    def test_replay_every_explored_trace(self):
        factory = counter_prog(2)
        for r in explore_all(factory):
            again = replay(factory, r.trace)
            assert again.returns == r.returns
            assert again.steps == r.steps

    def test_replay_random_execution_with_reads(self):
        def setup(mem):
            return {"x": mem.alloc("x", 0)}

        def w(env):
            yield Store(env["x"], 1, RLX)
            yield Store(env["x"], 2, RLX)

        def r(env):
            a = yield Load(env["x"], RLX)
            b = yield Load(env["x"], RLX)
            return (a, b)
        factory = lambda: Program(setup, [w, r])
        for res in explore_random(factory, 30, seed=3):
            assert replay(factory, res.trace).returns == res.returns


class TestCheckAll:
    def test_check_all_exhaustive_marks_exhausted(self):
        stats = check_all(counter_prog(2), lambda r: None)
        assert stats.exhausted
        assert stats.executions == 2
        assert stats.complete == 2

    def test_check_all_propagates_violations(self):
        def check(result):
            raise AssertionError("boom")
        with pytest.raises(AssertionError):
            check_all(counter_prog(1), check)

    def test_check_all_random_mode(self):
        stats = check_all(counter_prog(2), lambda r: None,
                          exhaustive=False, runs=25)
        assert stats.executions == 25
        assert not stats.exhausted

    def test_stats_record_steps(self):
        stats = check_all(counter_prog(2), lambda r: None)
        assert stats.steps == 4  # 2 executions x 2 ops
