"""The ORC11 default model: the machine's historical semantics, named.

Every hook is inherited from :class:`repro.models.base.MemoryModel`
unchanged — the base class *is* the ORC11 step-rule set, kept there so
that the default model is provably the identity refactor (the
equivalence suite pins ``model="orc11"`` byte-for-byte against the
pre-refactor reports).
"""

from __future__ import annotations

from .base import MemoryModel, register_model


class Orc11Model(MemoryModel):
    """ORC11: relaxed/acquire/release/seq-cst exactly as annotated."""

    id = "orc11"
    name = "ORC11 default (relaxed/acquire/release/seq-cst views)"


ORC11 = register_model(Orc11Model())
