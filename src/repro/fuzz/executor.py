"""Compile a :class:`FuzzProgram` into a checkable :class:`Scenario`.

The executor is the bridge between the grammar and everything the
engine already knows how to do: a generated program becomes a
`repro.checking.runner.Scenario` (program factory + graph extractors +
outcome obligations) and is registered under two builder names so fuzz
cases are replayable like any hand-written scenario:

* ``fuzz-case`` — rebuilds a scenario from an explicit program JSON
  (the form shrunk counterexamples take in the corpus);
* ``fuzz-gen`` — regenerates case ``index`` of a seeded campaign; when
  ``seed`` is omitted it is resolved from the ``REPRO_FUZZ_SEED``
  environment variable, which survives both ``fork`` and ``spawn``
  workers the way `repro.engine.faults` carries fault plans.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..checking.runner import GraphCase, Scenario
from ..core.spec_styles import SpecStyle
from ..engine.registry import register_scenario
from ..libs import (BROKEN_RLX, ChaseLevDeque, ElimStack, Exchanger, HWQueue,
                    LockedQueue, LockedStack, MSQueue, RELACQ, SEQCST,
                    Seqlock, Spinlock, SpscRingQueue, TreiberStack,
                    VyukovQueue)
from ..rmc.machine import ExecutionResult
from ..rmc.modes import NA
from ..rmc.ops import Load, Store
from ..rmc.program import Program
from .grammar import (FUZZ_SEED_ENV, FuzzProgram, GrammarConfig, LibInstance,
                      SIGNATURES, generate_program)

_PROFILES = {"rel-acq": RELACQ, "sc": SEQCST, "broken-rlx": BROKEN_RLX}


def _build_lib(inst: LibInstance, mem, key: str):
    params = SIGNATURES[inst.sig].params
    if inst.sig in ("ms-queue", "ms-queue-broken"):
        return MSQueue.setup(mem, key, _PROFILES[inst.profile or "rel-acq"])
    if inst.sig == "hw-queue":
        return HWQueue.setup(mem, key, capacity=params["capacity"])
    if inst.sig == "vyukov-queue":
        return VyukovQueue.setup(mem, key, capacity=params["capacity"])
    if inst.sig == "locked-queue":
        return LockedQueue.setup(mem, key)
    if inst.sig == "spsc-ring":
        return SpscRingQueue.setup(mem, key, capacity=params["capacity"])
    if inst.sig == "treiber":
        return TreiberStack.setup(mem, key)
    if inst.sig == "locked-stack":
        return LockedStack.setup(mem, key)
    if inst.sig == "elim-stack":
        return ElimStack.setup(mem, key, patience=params["patience"],
                               attempts=params["attempts"])
    if inst.sig == "chase-lev":
        return ChaseLevDeque.setup(mem, key, capacity=params["capacity"])
    if inst.sig == "exchanger":
        return Exchanger.setup(mem, key)
    if inst.sig == "spinlock":
        return Spinlock.setup(mem, key)
    if inst.sig == "seqlock":
        return Seqlock.setup(mem, key, width=params["width"])
    raise KeyError(f"unknown fuzz signature {inst.sig!r}")


def _run_op(env: Dict[str, Any], inst: LibInstance, i: int, opname: str,
            val: Optional[int]):
    """One scripted operation as a generator; returns its observation."""
    lib = env[f"lib{i}"]
    sig = inst.sig
    if opname == "enq":
        if sig in ("vyukov-queue", "spsc-ring"):
            ok = yield from lib.try_enqueue(val)
            return ok
        yield from lib.enqueue(val)
        return val
    if opname == "deq":
        return (yield from lib.try_dequeue())
    if opname == "push":
        if sig == "elim-stack":
            return (yield from lib.try_push(val))
        yield from lib.push(val)
        return val
    if opname == "pop":
        return (yield from lib.try_pop())
    if opname == "take":
        return (yield from lib.take())
    if opname == "steal":
        return (yield from lib.steal())
    if opname == "exchange":
        params = SIGNATURES[sig].params
        return (yield from lib.exchange(val, patience=params["patience"],
                                        attempts=params["attempts"]))
    if opname == "lock-inc":
        ok = yield from lib.try_acquire()
        if not ok:
            return None
        ctr = env[f"ctr{i}"]
        v = yield Load(ctr, NA)
        yield Store(ctr, v + 1, NA)
        yield from lib.release()
        return v
    if opname == "write":
        width = SIGNATURES[sig].params["width"]
        yield from lib.write(tuple(val for _ in range(width)))
        return val
    if opname == "read":
        return (yield from lib.read(attempts=3))
    raise KeyError(f"unknown fuzz operation {opname!r} for {sig}")


def build_factory(fp: FuzzProgram) -> Callable[[], Program]:
    """The zero-argument program factory explorers re-run from scratch."""
    name = f"fuzz-{fp.digest()}"

    def factory() -> Program:
        def setup(mem):
            env: Dict[str, Any] = {}
            for i, inst in enumerate(fp.libs):
                env[f"lib{i}"] = _build_lib(inst, mem, f"l{i}")
                if inst.sig == "spinlock":
                    env[f"ctr{i}"] = mem.alloc(f"l{i}.ctr", 0)
            return env

        def make_thread(script):
            def thread(env):
                results: List[Tuple[int, str, Any]] = []
                for (i, opname, val) in script:
                    out = yield from _run_op(env, fp.libs[i], i, opname, val)
                    results.append((i, opname, out))
                return results
            return thread

        return Program(setup, [make_thread(s) for s in fp.threads], name)
    return factory


def program_styles(fp: FuzzProgram) -> Tuple[SpecStyle, ...]:
    """The union of the program's per-library spec obligations, in a
    fixed order (determinism: scenario reports and corpus entries must
    not depend on dict iteration)."""
    union = set()
    for inst in fp.libs:
        union.update(SIGNATURES[inst.sig].styles)
    return tuple(sorted(union, key=lambda s: s.name))


def make_extractor(fp: FuzzProgram):
    def extract(result: ExecutionResult) -> List[GraphCase]:
        cases: List[GraphCase] = []
        for i, inst in enumerate(fp.libs):
            sig = SIGNATURES[inst.sig]
            if sig.graph_kind is None:
                continue
            lib = result.env[f"lib{i}"]
            to = lib.linearization() if sig.with_to else None
            cases.append(GraphCase(kind=sig.graph_kind, graph=lib.graph(),
                                   to=to, label=f"lib{i}:{inst.sig}",
                                   styles=sig.styles))
            if inst.sig == "elim-stack":
                # The composed spec: the underlying exchanger's graph
                # carries its own (weaker) obligation, exactly as in
                # `repro.checking.runner.elim_stack_cases`.
                cases.append(GraphCase(
                    kind="exchanger", graph=lib.ex.graph(),
                    label=f"lib{i}:exchanger",
                    styles=(SpecStyle.LAT_HB,)))
        return cases
    return extract


def make_outcome_check(fp: FuzzProgram):
    """Outcome obligations for libraries whose spec is not graph-shaped:
    seqlock reads are never torn, lock-protected increments are mutually
    exclusive.  Returns ``None`` when the program has neither."""
    seqlocks = [i for i, inst in enumerate(fp.libs) if inst.sig == "seqlock"]
    locks = [i for i, inst in enumerate(fp.libs) if inst.sig == "spinlock"]
    if not seqlocks and not locks:
        return None

    def check(result: ExecutionResult) -> None:
        for i in seqlocks:
            sl = result.env[f"lib{i}"]
            written = set(sl.written.values())
            for ret in result.returns.values():
                for (li, op, out) in ret or ():
                    if li == i and op == "read" and out is not None:
                        assert tuple(out) in written, (
                            f"seqlock torn read: lib{i} returned {out!r}, "
                            f"never written (written={sorted(written)}, "
                            f"trace={result.trace})")
        for i in locks:
            seen = [out for ret in result.returns.values()
                    for (li, op, out) in ret or ()
                    if li == i and op == "lock-inc" and out is not None]
            assert sorted(seen) == list(range(len(seen))), (
                f"mutual-exclusion violation: lib{i} critical sections "
                f"observed counter values {sorted(seen)} "
                f"(trace={result.trace})")
    return check


def scenario_for(fp: FuzzProgram) -> Scenario:
    """The checkable scenario of one generated program."""
    return Scenario(
        name=f"fuzz[{fp.digest()}]",
        factory=build_factory(fp),
        extract=make_extractor(fp),
        outcome_check=make_outcome_check(fp))


@register_scenario("fuzz-case")
def fuzz_case_scenario(program: Dict) -> Scenario:
    """Rebuild a fuzz scenario from an explicit program description —
    the registered face of shrunk corpus counterexamples."""
    fp = FuzzProgram.from_json(program)
    fp.validate()
    return scenario_for(fp)


@register_scenario("fuzz-gen")
def fuzz_gen_scenario(index: int, seed: Optional[int] = None,
                      config: Optional[Dict] = None) -> Scenario:
    """Regenerate case ``index`` of a seeded campaign.

    ``seed=None`` resolves the campaign master seed from the
    ``REPRO_FUZZ_SEED`` environment variable (set by
    `repro.fuzz.campaign.activate_fuzz_seed`), so spawn/fork workers
    and later replays rebuild the identical program from the index
    alone.
    """
    if seed is None:
        raw = os.environ.get(FUZZ_SEED_ENV)
        if raw is None:
            raise KeyError(
                "fuzz-gen needs an explicit seed or the "
                f"{FUZZ_SEED_ENV} environment variable")
        seed = int(raw)
    cfg = GrammarConfig.from_json(config) if config else GrammarConfig()
    return scenario_for(generate_program(seed, index, cfg))
