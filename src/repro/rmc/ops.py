"""Operations that thread coroutines yield to the machine.

Threads are Python generator functions.  Each memory action is expressed by
yielding one of the dataclasses below; the machine executes it against the
shared memory and sends the result back into the generator:

    value = yield Load(loc, ACQ)
    yield Store(loc, 1, REL)
    ok, old = yield Cas(loc, expected=0, desired=1, mode=ACQ_REL)

Subroutines compose with ``yield from``; in particular every library method
in `repro.libs` is a generator so that clients can write
``v = yield from queue.dequeue()``.

Commit hooks
------------
An operation may carry a *commit hook*: a callable invoked atomically with
the operation's memory effect, at the point where the machine has updated
the thread's view with the operation's own effect but has not yet sealed
the released message view.  This is the executable analogue of the paper's
commit (linearization) points: hooks extend the event graph and plant ghost
view components, and — because they run before the message view is sealed —
a release write *publishes* those components exactly as the logic's logical
views piggyback on physical views.

Hook signature: ``hook(ctx: CommitCtx) -> None``; see
`repro.rmc.machine.CommitCtx`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from .modes import Mode

CommitHook = Callable[["CommitCtx"], None]  # noqa: F821  (defined in machine)


@dataclass
class Load:
    """Read ``loc`` at ``mode``; evaluates to the value read."""

    loc: int
    mode: Mode
    #: Invoked when the read commits (e.g. an empty-dequeue commit point).
    commit: Optional[CommitHook] = None


@dataclass
class Store:
    """Write ``val`` to ``loc`` at ``mode``; evaluates to ``None``."""

    loc: int
    val: Any
    mode: Mode
    commit: Optional[CommitHook] = None


@dataclass
class Cas:
    """Strong compare-and-swap; evaluates to ``(succeeded, value_read)``.

    A successful CAS reads the modification-order-maximal message (so that
    its write is mo-adjacent) and atomically appends ``desired``.  A failed
    CAS is a plain read of any coherence-visible message whose value differs
    from ``expected``; a strong CAS never fails spuriously.

    ``mode`` applies to the success case; ``fail_mode`` to the read on
    failure (defaults to relaxed, as in the common C11 idiom).
    """

    loc: int
    expected: Any
    desired: Any
    mode: Mode
    fail_mode: Mode = Mode.RLX
    commit: Optional[CommitHook] = None
    commit_fail: Optional[CommitHook] = None


@dataclass
class Faa:
    """Fetch-and-add (value must be an int); evaluates to the old value."""

    loc: int
    delta: int
    mode: Mode
    commit: Optional[CommitHook] = None


@dataclass
class Xchg:
    """Atomic exchange; evaluates to the old value."""

    loc: int
    val: Any
    mode: Mode
    commit: Optional[CommitHook] = None


@dataclass
class Fence:
    """Memory fence at ``mode`` (ACQ, REL, ACQ_REL or SC)."""

    mode: Mode


@dataclass
class Alloc:
    """Allocate fresh locations, one per initial value in ``inits``.

    Evaluates to a list of location ids.  The initialization writes are
    non-atomic messages owned by the allocating thread; publication must
    therefore go through release/acquire, exactly as for malloc'd nodes in
    the paper's implementations.
    """

    inits: List[Any]
    name: str = "cell"


@dataclass
class GhostCommit:
    """A purely logical commit: run a hook without touching memory.

    Used where the paper commits an event at a point with no memory effect
    of its own (never by the shipped libraries, but available to clients and
    tests building custom protocols).  Evaluates to ``None``.
    """

    commit: CommitHook = field(default=None)  # type: ignore[assignment]


Op = Any  # union of the above, kept loose for speed


# ----------------------------------------------------------------------
# Operation footprints (the DPOR interface; see `repro.rmc.dpor`)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Footprint:
    """What one pending operation can touch, as seen by the scheduler.

    The machine computes a footprint for every enabled thread's *pending*
    operation before each scheduling decision (threads yield their next
    op before being scheduled, so the footprint is known ahead of time).
    The partial-order-reduction layer (`repro.rmc.dpor`) decides from two
    footprints alone whether the corresponding steps commute.

    ``sc`` marks operations that read/write the global seq-cst view;
    ``hooked`` marks operations carrying a commit hook (hooks share the
    global commit sequence and the library event registry, so hooked
    steps never commute with each other).
    """

    thread: int
    kind: str  # "read" | "write" | "rmw" | "fence" | "alloc" | "ghost"
    loc: Optional[int] = None
    mode: str = ""
    sc: bool = False
    hooked: bool = False

    def to_json(self):
        return {"t": self.thread, "k": self.kind, "l": self.loc,
                "m": self.mode, "sc": self.sc, "h": self.hooked}

    @staticmethod
    def from_json(data) -> "Footprint":
        return Footprint(thread=data["t"], kind=data["k"], loc=data["l"],
                         mode=data["m"], sc=data["sc"], hooked=data["h"])


def op_footprint(tid: int, op: Op, sc_upgrade: bool = False,
                 model=None) -> Footprint:
    """The footprint of thread ``tid``'s pending operation ``op``.

    ``sc_upgrade`` mirrors the machine's ablation knob: every non-NA
    access executes at seq-cst, so the footprint must account for the
    upgraded mode *before* the machine mutates the op at execution time.

    ``model`` is the memory model the machine executes under (id,
    instance, or None for the default): the footprint reflects the mode
    the operation *actually* executes at after model strengthening, and
    the model decides which operations are globally coupled
    (`MemoryModel.footprint_sc`) — e.g. TSO couples every atomic read
    through the flush frontier.
    """
    if model is None or isinstance(model, str):
        # Lazy: repro.models imports this module's package.
        from ..models.base import get_model
        model = get_model(model)
    mode = getattr(op, "mode", None)
    if sc_upgrade and mode is not None and mode is not Mode.NA:
        mode = Mode.SC
    if isinstance(op, Load):
        emode = model.read_mode(mode)
        return Footprint(tid, "read", op.loc, emode.value,
                         model.footprint_sc("read", emode),
                         op.commit is not None)
    if isinstance(op, Store):
        emode = model.write_mode(mode)
        return Footprint(tid, "write", op.loc, emode.value,
                         model.footprint_sc("write", emode),
                         op.commit is not None)
    if isinstance(op, Cas):
        fail = Mode.SC if (sc_upgrade and op.fail_mode is not Mode.NA) \
            else op.fail_mode
        emode = model.rmw_mode(mode)
        efail = model.fail_mode(fail)
        return Footprint(tid, "rmw", op.loc, emode.value,
                         model.footprint_sc("rmw", emode)
                         or model.footprint_sc("rmw", efail),
                         op.commit is not None or op.commit_fail is not None)
    if isinstance(op, (Faa, Xchg)):
        emode = model.rmw_mode(mode)
        return Footprint(tid, "rmw", op.loc, emode.value,
                         model.footprint_sc("rmw", emode),
                         op.commit is not None)
    if isinstance(op, Fence):
        emode = model.fence_mode(mode)
        return Footprint(tid, "fence", None, emode.value,
                         model.footprint_sc("fence", emode), False)
    if isinstance(op, Alloc):
        # Allocation bumps the global location/component counters; keep
        # it dependent with everything rather than model those.
        return Footprint(tid, "alloc", None, "", False, True)
    # GhostCommit and anything unknown: an arbitrary hook — conservative.
    return Footprint(tid, "ghost", None, "", False, True)
