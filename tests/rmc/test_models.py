"""The pluggable memory models: registry, per-model litmus
discriminations, the outcome-set inclusion lattice, and the ORC11
identity (the default model must be the pre-refactor machine)."""

import pytest

from repro.models import (DEFAULT_MODEL, LATTICE, MemoryModel, get_model,
                          model_ids, register_model)
from repro.models.diff import (compare_adjacent, diff_scenario,
                               fuzz_scenarios, profile_model, run_diff)
from repro.rmc import Mode, explore_all
from repro.rmc.litmus import CATALOGUE, outcomes

#: The canonical weak-behaviour witnesses, per litmus (outcome tuples are
#: ordered by thread id; writer threads return None).
SB_WEAK = (0, 0)                          # both reads miss the other store
MP_WEAK = (None, (1, 0))                  # flag seen, data missed
IRIW_SPLIT = (None, None, (1, 0), (1, 0))  # readers disagree on the order


class TestRegistry:
    def test_lattice_order_and_default(self):
        assert LATTICE == ("sc", "tso", "ra", "orc11")
        assert DEFAULT_MODEL == "orc11"
        assert tuple(model_ids())[: len(LATTICE)] == LATTICE

    def test_get_model_accepts_str_instance_none(self):
        orc11 = get_model("orc11")
        assert get_model(None) is orc11
        assert get_model(orc11) is orc11
        assert get_model("tso").id == "tso"
        with pytest.raises(KeyError):
            get_model("power")

    def test_register_is_idempotent_by_type(self):
        tso = get_model("tso")
        assert register_model(type(tso)()) is not None
        assert get_model("tso").id == "tso"

    def test_base_class_is_orc11_semantics(self):
        """The hook defaults must be the identity strengthening: a bare
        MemoryModel behaves exactly like the registered orc11 model."""
        base = MemoryModel()
        for mode in Mode:
            assert base.read_mode(mode) is mode
            assert base.write_mode(mode) is mode
            assert base.rmw_mode(mode) is mode
            assert base.fence_mode(mode) is mode


class TestStrengthening:
    """The mode maps are the declarative heart of each model."""

    def test_sc_strengthens_every_atomic(self):
        sc = get_model("sc")
        for mode in Mode:
            want = mode if mode is Mode.NA else Mode.SC
            assert sc.read_mode(mode) is want
            assert sc.write_mode(mode) is want
            assert sc.rmw_mode(mode) is want
            assert sc.fence_mode(mode) is want

    def test_ra_promotes_relaxed_only(self):
        ra = get_model("ra")
        assert ra.read_mode(Mode.RLX) is Mode.ACQ
        assert ra.write_mode(Mode.RLX) is Mode.REL
        assert ra.rmw_mode(Mode.RLX) is Mode.ACQ_REL
        assert ra.read_mode(Mode.SC) is Mode.SC
        assert ra.write_mode(Mode.SC) is Mode.SC
        assert ra.read_mode(Mode.NA) is Mode.NA

    def test_tso_keeps_na_and_sc(self):
        tso = get_model("tso")
        assert tso.read_mode(Mode.RLX) is Mode.ACQ
        assert tso.write_mode(Mode.RLX) is Mode.REL
        assert tso.rmw_mode(Mode.RLX) is Mode.SC
        assert tso.fence_mode(Mode.ACQ) is Mode.SC
        assert tso.read_mode(Mode.NA) is Mode.NA
        assert tso.write_mode(Mode.NA) is Mode.NA

    def test_tso_footprints_make_atomic_reads_global(self):
        """TSO reads publish into the flush frontier, so DPOR must treat
        them as SC-dependent; non-atomics stay local."""
        tso = get_model("tso")
        assert tso.footprint_sc("read", Mode.ACQ)
        assert tso.footprint_sc("rmw", Mode.SC)
        assert not tso.footprint_sc("read", Mode.NA)
        assert not tso.footprint_sc("write", Mode.REL)


class TestLitmusDiscriminations:
    """Each adjacent model pair is separated by a named litmus shape."""

    def test_sb_rlx_separates_sc_from_tso(self):
        """Store buffering is THE TSO weakness: both threads reading 0 is
        forbidden at SC, allowed everywhere below."""
        factory = CATALOGUE["SB+rlx"]
        per = {m: outcomes(factory, model=m) for m in LATTICE}
        assert SB_WEAK not in per["sc"]
        assert SB_WEAK in per["tso"]
        assert SB_WEAK in per["ra"]
        assert SB_WEAK in per["orc11"]

    def test_iriw_acq_separates_tso_from_ra(self):
        """IRIW split reads: TSO is multi-copy atomic (the flush frontier
        is global), release/acquire is not."""
        factory = CATALOGUE["IRIW+acq"]
        per = {m: outcomes(factory, model=m) for m in LATTICE}
        assert IRIW_SPLIT not in per["sc"]
        assert IRIW_SPLIT not in per["tso"]
        assert IRIW_SPLIT in per["ra"]
        assert IRIW_SPLIT in per["orc11"]

    def test_mp_rlx_separates_ra_from_orc11(self):
        """Relaxed message passing: RA promotes the accesses to rel/acq,
        so only genuine ORC11 shows the stale-data read."""
        factory = CATALOGUE["MP+rlx"]
        per = {m: outcomes(factory, model=m) for m in LATTICE}
        assert MP_WEAK not in per["sc"]
        assert MP_WEAK not in per["tso"]
        assert MP_WEAK not in per["ra"]
        assert MP_WEAK in per["orc11"]

    @pytest.mark.parametrize("name", ["CoRR", "CoWW-CoWR", "LB"])
    def test_coherence_shapes_are_model_invariant(self, name):
        """Per-location coherence and no-load-buffering hold at every
        strength: the models must agree exactly."""
        factory = CATALOGUE[name]
        per = [outcomes(factory, model=m) for m in LATTICE]
        assert all(o == per[0] for o in per[1:])

    def test_sb_sc_is_model_invariant(self):
        """Already-SC accesses cannot be strengthened further."""
        factory = CATALOGUE["SB+sc"]
        per = [outcomes(factory, model=m) for m in LATTICE]
        assert all(o == per[0] for o in per[1:])
        assert SB_WEAK not in per[0]


class TestInclusionLattice:
    @pytest.mark.parametrize("name", sorted(CATALOGUE))
    def test_adjacent_inclusions_hold(self, name):
        profiles, findings = diff_scenario(name, CATALOGUE[name])
        assert not [f for f in findings if f.fatal], \
            [f.line() for f in findings]
        for m in LATTICE:
            assert profiles[m].exhausted

    def test_run_diff_full_catalogue(self):
        report = run_diff(fuzz_cases=0)
        assert report.ok
        assert report.scenarios == len(CATALOGUE)
        assert report.models == LATTICE
        js = report.to_json()
        assert js["ok"] and js["scenarios"] == len(CATALOGUE)

    def test_compare_adjacent_flags_violation(self):
        """A fabricated stronger-only outcome must come back fatal."""
        factory = CATALOGUE["SB+rlx"]
        strong = profile_model(factory, "tso")
        weak = profile_model(factory, "sc")
        findings = compare_adjacent("inverted", strong, weak)
        # tso ⊆ sc is false: SB_WEAK is the witness.
        assert any(f.kind == "inclusion-violation" and f.fatal
                   for f in findings)
        assert any(repr(SB_WEAK) in d for f in findings for d in f.delta)

    def test_not_exhausted_is_informational(self):
        factory = CATALOGUE["SB+rlx"]
        strong = profile_model(factory, "sc")
        weak = profile_model(factory, "tso", max_executions=2)
        findings = compare_adjacent("capped", strong, weak)
        assert [f.kind for f in findings] == ["not-exhausted"]
        assert not findings[0].fatal


class TestFuzzScenarios:
    def test_selection_is_deterministic_and_deduped(self):
        """Fuzz scenario selection is a pure function of the seed, the
        probe filter skips enumeration blowups (counting them), and
        duplicate generated programs are folded."""
        a, skipped_a = fuzz_scenarios(3, seed=0, probe_executions=60)
        b, skipped_b = fuzz_scenarios(3, seed=0, probe_executions=60)
        assert [n for n, _ in a] == [n for n, _ in b]
        assert skipped_a == skipped_b
        names = [n for n, _ in a]
        assert len(set(names)) == len(names)
        assert all(n.startswith("fuzz[") for n in names)


class TestOrc11Identity:
    """The refactor must be behaviour-preserving: the default model is
    byte-for-byte the pre-refactor machine."""

    @pytest.mark.parametrize("name", sorted(CATALOGUE))
    def test_default_equals_explicit_orc11(self, name):
        factory = CATALOGUE[name]
        explicit = [(tuple(r.trace), r.race is not None, r.returns)
                    for r in explore_all(factory, model="orc11")]
        default = [(tuple(r.trace), r.race is not None, r.returns)
                   for r in explore_all(factory)]
        assert explicit == default
