"""The silent-corruption audit layer (`repro.engine.audit`).

Unit coverage of the fingerprint/sampler/bisection pieces, then the
end-to-end conviction: a pool worker whose result blob is corrupted
*before* the CRC is stamped (framing-consistent lying) must be caught
by the sampled trusted re-execution, quarantined, repaired in the
merge, and leave a replayable divergence witness in the corpus.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import EngineParams, run_scenario
from repro.engine.audit import (AuditSampler, bisect_divergence,
                                replay_divergence, report_fingerprint)
from repro.engine.corpus import load_corpus
from repro.engine.faults import Fault, FaultPlan
from repro.engine.registry import build_scenario

from ._support import assert_reports_equal, hw_spec


class TestReportFingerprint:
    def test_seconds_is_the_only_free_field(self):
        spec = hw_spec()
        params = EngineParams(exhaustive=True, workers=1, target_shards=1)
        a = run_scenario(build_scenario(spec), params, spec=spec).report
        b = run_scenario(build_scenario(spec), params, spec=spec).report
        assert a.seconds != b.seconds or True  # timing may differ
        assert report_fingerprint(a) == report_fingerprint(b)

    def test_content_change_changes_the_fingerprint(self):
        spec = hw_spec()
        params = EngineParams(exhaustive=True, workers=1, target_shards=1)
        report = run_scenario(build_scenario(spec), params,
                              spec=spec).report
        before = report_fingerprint(report)
        report.executions += 1
        assert report_fingerprint(report) != before


class TestAuditSampler:
    def test_fraction_bounds_are_validated(self):
        with pytest.raises(ValueError):
            AuditSampler(-0.1)
        with pytest.raises(ValueError):
            AuditSampler(1.5)

    def test_zero_audits_nothing_one_audits_everything(self):
        off, full = AuditSampler(0.0), AuditSampler(1.0)
        assert not any(off.should_audit(s) for s in range(64))
        assert all(full.should_audit(s) for s in range(64))

    def test_deterministic_per_seed_and_shard(self):
        a, b = AuditSampler(0.5, seed=9), AuditSampler(0.5, seed=9)
        assert [a.should_audit(s) for s in range(128)] \
            == [b.should_audit(s) for s in range(128)]

    def test_fraction_roughly_respected(self):
        picked = sum(AuditSampler(0.25, seed=1).should_audit(s)
                     for s in range(1000))
        assert 150 < picked < 350


class TestBisectDivergence:
    def test_equal_documents_yield_none(self):
        doc = {"a": [1, {"b": 2}], "c": "x"}
        assert bisect_divergence(doc, doc) is None

    def test_descends_to_the_minimal_leaf(self):
        expected = {"styles": {"lat-hb": {"checked": 20, "failed": 3}}}
        observed = {"styles": {"lat-hb": {"checked": 20, "failed": 4}}}
        path, want, got = bisect_divergence(expected, observed)
        assert path == "$.styles.lat-hb.failed"
        assert (want, got) == (3, 4)

    def test_length_mismatch_stops_at_the_container(self):
        path, want, got = bisect_divergence({"t": [1, 2]}, {"t": [1]})
        assert path == "$.t.length"
        assert (want, got) == (2, 1)

    def test_missing_key_is_named(self):
        path, want, got = bisect_divergence({"a": 1}, {})
        assert path == "$.a"
        assert (want, got) == (1, None)


class TestAuditedPoolRun:
    def test_lying_worker_convicted_repaired_and_witnessed(self, tmp_path):
        """Acceptance: `pool.flip_result_byte` rotates a digit of the
        execution count *before* the CRC is stamped, so the transport
        accepts the lie.  With ``audit_fraction=1.0`` the trusted
        re-execution must convict the worker, quarantine the pool,
        substitute the trusted result (merge equals serial), degrade
        coverage honestly, and persist a replayable witness."""
        spec = hw_spec()
        serial = run_scenario(
            build_scenario(spec),
            EngineParams(exhaustive=True, workers=1, target_shards=1),
            spec=spec).report
        corpus = str(tmp_path / "corpus.jsonl")
        params = EngineParams(exhaustive=True, workers=2, target_shards=4,
                              shard_timeout=2.0, heartbeat_interval=0.05,
                              audit_fraction=1.0, corpus_path=corpus)
        plan = FaultPlan((Fault("pool.flip_result_byte", "corrupt",
                                shard=1, attempt=1),))
        with plan:
            result = run_scenario(build_scenario(spec), params, spec=spec)
        tel = result.telemetry
        assert tel.audit_divergences == 1
        assert tel.audits_done >= 4
        assert tel.workers_quarantined == 1
        # The trusted substitution repairs the merge; the conviction
        # degrades coverage, so the report cannot claim exhaustiveness.
        assert result.coverage.divergences == 1
        assert result.coverage.degraded
        repaired = result.report
        assert repaired.exhausted is False
        repaired.exhausted = serial.exhausted
        assert_reports_equal(repaired, serial)
        # The witness replays from the persisted corpus: a fresh
        # trusted execution confirms the recorded expected fingerprint
        # and the recorded observation stays the outlier.
        assert os.path.exists(corpus)
        witnesses = [e for e in load_corpus(corpus)
                     if e.kind == "divergence"]
        assert len(witnesses) == 1
        witness = witnesses[0]
        assert witness.expected_fingerprint != witness.observed_fingerprint
        assert witness.divergence_path
        outcome = replay_divergence(witness)
        assert outcome.reproduced, outcome.detail

    def test_clean_run_audits_without_findings(self):
        spec = hw_spec()
        serial = run_scenario(
            build_scenario(spec),
            EngineParams(exhaustive=True, workers=1, target_shards=1),
            spec=spec).report
        params = EngineParams(exhaustive=True, workers=2, target_shards=4,
                              shard_timeout=2.0, heartbeat_interval=0.05,
                              audit_fraction=1.0)
        result = run_scenario(build_scenario(spec), params, spec=spec)
        tel = result.telemetry
        assert tel.audits_done >= 4
        assert tel.audit_divergences == 0
        assert not result.coverage.degraded
        assert_reports_equal(result.report, serial)
