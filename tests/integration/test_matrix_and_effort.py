"""E2/E7: the spec-satisfaction matrix and the effort table (fast cuts)."""

import pytest

from repro.checking import (Implementation, default_implementations,
                            effort_table, render_table, run_matrix)
from repro.checking.stats import DD_TREIBER_KLOC, PAPER_KLOC, impl_loc
from repro.core import SpecStyle
from repro.libs import HWQueue, MSQueue, RELACQ
from repro.tools.loc import count_file, count_tree, summarize


@pytest.fixture(scope="module")
def small_matrix():
    impls = [
        Implementation("ms-queue/ra", "queue",
                       lambda mem: MSQueue.setup(mem, "q", RELACQ)),
        Implementation("hw-queue/rlx", "queue",
                       lambda mem: HWQueue.setup(mem, "q", capacity=16)),
    ]
    return run_matrix(implementations=impls,
                      workloads=((2, 3, 0), (3, 3, 1)),
                      runs=60, exhaustive_small=False)


class TestMatrix:
    def test_ms_passes_abstract_styles(self, small_matrix):
        cells = small_matrix.rows["ms-queue/ra"]
        for style in (SpecStyle.LAT_SO_ABS, SpecStyle.LAT_HB_ABS,
                      SpecStyle.LAT_HB):
            assert cells[style].ok, cells[style].example

    def test_hw_passes_lat_hb_only(self, small_matrix):
        cells = small_matrix.rows["hw-queue/rlx"]
        assert cells[SpecStyle.LAT_HB].ok
        assert not cells[SpecStyle.LAT_HB_ABS].ok, \
            "the HW queue must fail abstract-state construction somewhere"
        assert not cells[SpecStyle.LAT_SO_ABS].ok

    def test_render(self, small_matrix):
        text = small_matrix.render()
        assert "ms-queue/ra" in text and "LAT_hb" in text

    def test_default_implementations_cover_paper(self):
        names = {i.name for i in default_implementations()}
        assert {"ms-queue/ra", "hw-queue/rlx", "treiber/rel-acq",
                "elim-stack", "ms-queue/broken-rlx"} <= names


class TestEffort:
    def test_paper_numbers_present(self):
        assert PAPER_KLOC["treiber/rel-acq"] == 2.2
        assert DD_TREIBER_KLOC == 12.0
        assert 0.1 <= PAPER_KLOC["mp-client"] <= 0.5

    def test_impl_loc_counts_source(self):
        loc = impl_loc("treiber/rel-acq")
        assert loc is not None and 50 < loc < 400

    def test_effort_table_renders(self):
        rows = effort_table({"treiber/rel-acq": []})
        text = render_table(rows)
        assert "treiber" in text and "paper-KLOC" in text


class TestLocCounter:
    def test_count_file_distinguishes_code_and_doc(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text('"""Docstring\nline two."""\n\n# comment\nx = 1\n')
        c = count_file(str(p))
        assert c.code == 1
        assert c.doc >= 3
        assert c.blank == 1

    def test_count_tree_and_summarize(self):
        import repro
        import os
        root = os.path.dirname(repro.__file__)
        counts = count_tree(root)
        total = summarize(counts)
        assert total.code > 1000
        assert any(k.endswith("msqueue.py") for k in counts)


class TestTraceTools:
    def test_format_execution(self):
        from repro.libs import MSQueue, RELACQ
        from repro.rmc import Program, RandomDecider
        from repro.tools.trace import format_execution, format_graph, \
            format_violations

        def setup(mem):
            return {"q": MSQueue.setup(mem, "q", RELACQ)}

        def t(env):
            yield from env["q"].enqueue(1)
            return (yield from env["q"].dequeue())
        r = Program(setup, [t]).run(RandomDecider(0))
        text = format_execution(r)
        assert "complete" in text and "thread 0 returned 1" in text
        assert "q.head" in text

        gtext = format_graph(r.env["q"].graph(), title="queue")
        assert "Enq" in gtext and "so: e0 -> e1" in gtext

        from repro.core import check_queue_consistent
        assert format_violations([]) == "(no violations)"

    def test_format_execution_race(self):
        from repro.rmc import NA, Program, Store, explore_all
        from repro.tools.trace import format_execution

        def setup(mem):
            return {"d": mem.alloc("d", 0)}

        def w(env):
            yield Store(env["d"], 1, NA)
        for r in explore_all(lambda: Program(setup, [w, w])):
            if r.race is not None:
                assert "RACE" in format_execution(r)
                return
        raise AssertionError("expected a racy execution")
