"""Deterministic counterexample shrinking for generated fuzz programs.

When a campaign finds a violation it does not persist the raw generated
program: a random client is noisy, and the corpus is the project's
regression suite — it should hold *minimal* reproducers.  The shrinker
greedily applies size-reducing transformations (drop threads, drop op
chunks, drop single ops, drop unused library instances, canonicalize
payload values) and keeps a candidate only when the *oracle* confirms it
still exhibits the same class of failure — same kind (``style`` /
``outcome`` / ``race``) and, for spec-style violations, the same style.

Everything is deterministic: candidates are enumerated in a fixed
order, the oracle explores with a fixed seed, and the first accepted
improvement restarts the pass — so the same failing program always
shrinks to the same minimal program, on any machine.  The shrunk
program is failure-verified by construction (only oracle-confirmed
candidates are ever accepted) and never larger than the original in
threads or ops (every transformation is a strict reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.spec_styles import SpecStyle, check_style
from ..rmc.explore import explore_all, explore_random
from ..rmc.machine import ExecutionResult
from .executor import program_styles, scenario_for
from .grammar import FuzzProgram, LibInstance

#: (kind, style-name-or-None) — the identity of a failure class.
FailureKey = Tuple[str, Optional[str]]


@dataclass(frozen=True)
class Failure:
    """One observed violation: its class plus a replayable witness."""

    kind: str  # "style" | "outcome" | "race"
    style: Optional[SpecStyle]
    trace: Tuple
    message: str

    @property
    def key(self) -> FailureKey:
        return (self.kind, self.style.name if self.style else None)


def failure_of(scenario, result: ExecutionResult,
               want: Optional[FailureKey] = None) -> Optional[Failure]:
    """The first failure this execution exhibits, filtered to ``want``.

    Checks in a fixed order (race, outcome, then styles in scenario
    order) so the reported failure for a given execution is stable.
    """
    def match(f: Failure) -> Optional[Failure]:
        return f if want is None or f.key == want else None

    if result.race is not None:
        return match(Failure("race", None, tuple(result.trace),
                             str(result.race)))
    if result.truncated:
        return None
    if scenario.outcome_check is not None:
        try:
            scenario.outcome_check(result)
        except AssertionError as err:
            found = match(Failure("outcome", None, tuple(result.trace),
                                  str(err)))
            if found:
                return found
    for case in scenario.extract(result):
        for style in case.styles or ():
            if want is not None and (("style", style.name) != want):
                continue
            res = check_style(case.graph, case.kind, style, to=case.to)
            if not res.ok:
                msg = str(res.violations[0]) if res.violations \
                    else "violation"
                found = match(Failure("style", style,
                                      tuple(result.trace), msg))
                if found:
                    return found
    return None


def exploration_oracle(runs: int, seed: int, max_steps: int,
                       exhaustive: bool = False,
                       max_executions: int = 400,
                       want: Optional[FailureKey] = None,
                       model=None,
                       ) -> Callable[[FuzzProgram], Optional[Failure]]:
    """An oracle that re-explores a candidate and reports the first
    matching failure (or ``None``).  Deterministic for fixed arguments:
    randomized exploration uses the fixed ``seed``, exhaustive
    exploration enumerates in DFS order (no DPOR — the oracle must not
    trust the reduction it may be used to debug)."""
    def check(fp: FuzzProgram) -> Optional[Failure]:
        if fp.op_count() == 0:
            return None
        scenario = scenario_for(fp)
        if exhaustive:
            source = explore_all(scenario.factory, max_steps=max_steps,
                                 max_executions=max_executions, model=model)
        else:
            source = explore_random(scenario.factory, runs=runs, seed=seed,
                                    max_steps=max_steps, model=model)
        for result in source:
            failure = failure_of(scenario, result, want)
            if failure is not None:
                return failure
        return None
    return check


@dataclass
class ShrinkStats:
    """Honest accounting of one shrink run."""

    attempts: int = 0        # oracle invocations (including the final
    accepted: int = 0        # re-verification of the result)
    initial_threads: int = 0
    initial_ops: int = 0
    final_threads: int = 0
    final_ops: int = 0

    def line(self) -> str:
        return (f"shrink {self.initial_threads}t/{self.initial_ops}op -> "
                f"{self.final_threads}t/{self.final_ops}op "
                f"({self.attempts} oracle calls, {self.accepted} accepted)")


def _remap_thread_ref(ref: int, dropped: int) -> int:
    if ref == dropped:
        return 0
    return ref - 1 if ref > dropped else ref


def _drop_thread(fp: FuzzProgram, t: int) -> FuzzProgram:
    libs = tuple(
        LibInstance(inst.sig, inst.profile,
                    _remap_thread_ref(inst.owner, t),
                    _remap_thread_ref(inst.partner, t))
        for inst in fp.libs)
    threads = fp.threads[:t] + fp.threads[t + 1:]
    return FuzzProgram(libs=libs, threads=threads,
                       seed=fp.seed, index=fp.index)


def _drop_ops(fp: FuzzProgram, t: int, start: int, count: int) -> FuzzProgram:
    script = fp.threads[t]
    new_script = script[:start] + script[start + count:]
    threads = fp.threads[:t] + (new_script,) + fp.threads[t + 1:]
    return FuzzProgram(libs=fp.libs, threads=threads,
                       seed=fp.seed, index=fp.index)


def _drop_unused_libs(fp: FuzzProgram) -> Optional[FuzzProgram]:
    used = {i for script in fp.threads for (i, _op, _val) in script}
    if len(used) == len(fp.libs):
        return None
    keep = [i for i in range(len(fp.libs)) if i in used]
    if not keep:
        return None
    remap = {old: new for new, old in enumerate(keep)}
    libs = tuple(fp.libs[i] for i in keep)
    threads = tuple(
        tuple((remap[i], op, val) for (i, op, val) in script)
        for script in fp.threads)
    return FuzzProgram(libs=libs, threads=threads,
                       seed=fp.seed, index=fp.index)


def _canonicalize_values(fp: FuzzProgram) -> FuzzProgram:
    """Renumber payload values to 1..n in (thread, position) order."""
    counter = 0
    threads: List[Tuple] = []
    for script in fp.threads:
        new_script = []
        for (i, op, val) in script:
            if val is not None:
                counter += 1
                new_script.append((i, op, counter))
            else:
                new_script.append((i, op, val))
        threads.append(tuple(new_script))
    return FuzzProgram(libs=fp.libs, threads=tuple(threads),
                       seed=fp.seed, index=fp.index)


def _valid(fp: FuzzProgram) -> bool:
    try:
        fp.validate()
    except ValueError:
        return False
    return True


def _candidates(fp: FuzzProgram) -> Iterator[FuzzProgram]:
    """Strictly smaller (or value-canonicalized) variants, fixed order."""
    # 1. Drop whole threads (biggest single reduction first).
    if len(fp.threads) > 1:
        for t in range(len(fp.threads)):
            yield _drop_thread(fp, t)
    # 2. Drop contiguous op chunks, halves before single ops (ddmin-lite).
    for t, script in enumerate(fp.threads):
        n = len(script)
        if n >= 4:
            half = n // 2
            yield _drop_ops(fp, t, 0, half)
            yield _drop_ops(fp, t, half, n - half)
    for t, script in enumerate(fp.threads):
        for j in range(len(script)):
            yield _drop_ops(fp, t, j, 1)
    # 3. Drop library instances no op references any more.
    smaller = _drop_unused_libs(fp)
    if smaller is not None:
        yield smaller


def shrink(fp: FuzzProgram,
           check: Callable[[FuzzProgram], Optional[Failure]],
           max_attempts: int = 250
           ) -> Tuple[FuzzProgram, Failure, ShrinkStats]:
    """Minimize ``fp`` while ``check`` keeps confirming the failure.

    Returns ``(minimal program, its re-verified failure, stats)``.
    Raises ``ValueError`` if ``fp`` does not fail under the oracle in
    the first place (a fuzz-campaign bug, not a user error).
    """
    stats = ShrinkStats()
    stats.initial_threads, stats.initial_ops = fp.size()
    stats.attempts += 1
    best_failure = check(fp)
    if best_failure is None:
        raise ValueError(
            "shrink: program does not fail under the oracle "
            f"(digest {fp.digest()})")
    best = fp

    improved = True
    while improved and stats.attempts < max_attempts:
        improved = False
        for candidate in _candidates(best):
            if stats.attempts >= max_attempts:
                break
            if not _valid(candidate):
                continue
            stats.attempts += 1
            failure = check(candidate)
            if failure is not None:
                best, best_failure = candidate, failure
                stats.accepted += 1
                improved = True
                break  # restart the pass from the new, smaller best

    canon = _canonicalize_values(best)
    if canon != best and _valid(canon) and stats.attempts < max_attempts:
        stats.attempts += 1
        failure = check(canon)
        if failure is not None:
            best, best_failure = canon, failure
            stats.accepted += 1

    stats.final_threads, stats.final_ops = best.size()
    assert stats.final_threads <= stats.initial_threads
    assert stats.final_ops <= stats.initial_ops
    return best, best_failure, stats
