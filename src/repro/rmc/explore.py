"""Execution-space exploration: exhaustive (stateless DFS) and randomized.

The exhaustive explorer enumerates the complete decision tree of a bounded
program by *replay*: each execution is rerun from scratch under a
`repro.rmc.scheduler.PrefixDecider`; the recorded trace of
``(arity, chosen)`` pairs identifies the rightmost decision with an untried
sibling, which becomes the next prefix.  This is classic stateless model
checking (generators cannot be snapshotted, so replay is the honest way).

It plays the role the Coq proofs play in the paper: instead of proving a
consistency condition for *all* executions, we enumerate all executions of
bounded scenarios and check the condition on each.  Randomized exploration
scales the same checks to larger scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from .dpor import DporStats, explore_all_dpor
from .machine import ExecutionResult
from .program import Program
from .scheduler import FixedDecider, PrefixDecider, RandomDecider

ProgramFactory = Callable[[], Program]

#: Cap on stored race counterexample traces (kept small; the full set goes
#: to the corpus when one is attached).
RACE_TRACE_CAP = 5


@dataclass
class ExplorationStats:
    """Aggregate statistics of one exploration run."""

    executions: int = 0
    complete: int = 0
    truncated: int = 0
    raced: int = 0
    steps: int = 0
    exhausted: bool = False  # True iff the whole tree was enumerated
    race_traces: List[List] = field(default_factory=list)
    #: Race traces not stored because :data:`RACE_TRACE_CAP` was reached
    #: — honest accounting for the capped list above.
    race_traces_dropped: int = 0
    #: Branches skipped by sleep-set DPOR (`repro.rmc.dpor`); 0 for
    #: naive enumeration.
    pruned_subtrees: int = 0

    def record(self, result: ExecutionResult) -> None:
        self.executions += 1
        self.steps += result.steps
        if result.race is not None:
            self.raced += 1
            if len(self.race_traces) < RACE_TRACE_CAP:
                self.race_traces.append(list(result.trace))
            else:
                self.race_traces_dropped += 1
        elif result.truncated:
            self.truncated += 1
        else:
            self.complete += 1

    def merge(self, other: "ExplorationStats") -> "ExplorationStats":
        """Fold ``other`` (a later shard, in serial order) into ``self``.

        Capped lists keep the earliest entries, so merging per-shard
        partials in shard order reproduces the serial run's stats exactly.
        """
        self.executions += other.executions
        self.complete += other.complete
        self.truncated += other.truncated
        self.raced += other.raced
        self.steps += other.steps
        self.exhausted = self.exhausted and other.exhausted
        room = RACE_TRACE_CAP - len(self.race_traces)
        taken = max(0, min(room, len(other.race_traces)))
        if taken:
            self.race_traces.extend(other.race_traces[:taken])
        self.race_traces_dropped += (other.race_traces_dropped
                                     + len(other.race_traces) - taken)
        self.pruned_subtrees += other.pruned_subtrees
        return self

    def __add__(self, other: "ExplorationStats") -> "ExplorationStats":
        out = ExplorationStats(
            executions=self.executions, complete=self.complete,
            truncated=self.truncated, raced=self.raced, steps=self.steps,
            exhausted=self.exhausted, race_traces=list(self.race_traces),
            race_traces_dropped=self.race_traces_dropped,
            pruned_subtrees=self.pruned_subtrees)
        return out.merge(other)


def explore_all(
    factory: ProgramFactory,
    max_steps: int = 2_000,
    max_executions: int = 200_000,
    race_detection: bool = True,
    sc_upgrade: bool = False,
    prefix: Sequence[int] = (),
    model=None,
) -> Iterator[ExecutionResult]:
    """Enumerate every execution of the (bounded) program, by replay.

    Programs with unbounded spin loops must be loop-bounded for exhaustive
    mode; runs exceeding ``max_steps`` come back with ``truncated=True`` and
    their subtree is still backtracked normally.

    ``prefix`` roots the enumeration at a decision-tree subtree: the first
    ``len(prefix)`` decisions are pinned and backtracking never crosses
    above them.  This is the work-sharding hook of the parallel engine
    (`repro.engine`): disjoint prefixes yield disjoint subtrees whose
    union is exactly the ``prefix=()`` enumeration, in DFS order.
    """
    base = list(prefix)
    cur: List[int] = list(base)
    executions = 0
    while executions < max_executions:
        decider = PrefixDecider(cur)
        result = factory().run(decider, max_steps=max_steps,
                               race_detection=race_detection,
                               sc_upgrade=sc_upgrade, model=model)
        executions += 1
        yield result
        trace = decider.trace
        j = len(trace) - 1
        while j >= len(base) and trace[j][1] + 1 >= trace[j][0]:
            j -= 1
        if j < len(base):
            return
        cur = [trace[i][1] for i in range(j)] + [trace[j][1] + 1]


def explore_random(
    factory: ProgramFactory,
    runs: int,
    seed: int = 0,
    max_steps: int = 100_000,
    race_detection: bool = True,
    sc_upgrade: bool = False,
    model=None,
) -> Iterator[ExecutionResult]:
    """Run ``runs`` independent executions with seeded random decisions."""
    for i in range(runs):
        decider = RandomDecider(seed + i)
        yield factory().run(decider, max_steps=max_steps,
                            race_detection=race_detection,
                            sc_upgrade=sc_upgrade, model=model)


def check_all(
    factory: ProgramFactory,
    check: Callable[[ExecutionResult], None],
    exhaustive: bool = True,
    runs: int = 500,
    seed: int = 0,
    max_steps: int = 2_000,
    max_executions: int = 200_000,
    dpor: Optional[bool] = None,
    model=None,
) -> ExplorationStats:
    """Explore and apply ``check`` to every non-raced complete execution.

    ``check`` should raise (e.g. ``AssertionError``) on a violation; the
    offending execution's decision trace is replayable with
    :func:`replay`.

    ``dpor`` controls sleep-set partial-order reduction
    (`repro.rmc.dpor`): on by default in exhaustive mode (every final
    outcome is still checked; redundant interleavings are skipped and
    counted in ``stats.pruned_subtrees``), ignored in randomized mode.
    """
    stats = ExplorationStats()
    dstats = DporStats()
    if exhaustive:
        if dpor is not False:
            source = explore_all_dpor(factory, max_steps=max_steps,
                                      max_executions=max_executions,
                                      stats=dstats, model=model)
        else:
            source = explore_all(factory, max_steps=max_steps,
                                 max_executions=max_executions, model=model)
    else:
        source = explore_random(factory, runs=runs, seed=seed,
                                max_steps=max_steps, model=model)
    exhausted = True
    for result in source:
        stats.record(result)
        if result.ok:
            check(result)
        if stats.executions >= max_executions:
            exhausted = False
            break
    stats.exhausted = exhaustive and exhausted
    stats.pruned_subtrees = dstats.pruned_subtrees
    return stats


def replay(factory: ProgramFactory, trace, max_steps: int = 100_000,
           race_detection: bool = True, model=None) -> ExecutionResult:
    """Re-execute a recorded decision trace (counterexample replay)."""
    return factory().run(FixedDecider(trace), max_steps=max_steps,
                         race_detection=race_detection, model=model)
