"""Property-based mutation testing of the queue checker.

hypothesis generates consistent queue graphs and a random corruption;
the checker must flag every corrupted graph (no silent acceptance) while
accepting every uncorrupted one (tested elsewhere).  This generalizes the
hand-picked cases in ``test_checker_sensitivity.py``.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.core import Deq, EMPTY, Enq, Graph, check_queue_consistent
from repro.core.event import Event

from ..conftest import closed


@st.composite
def consistent_queue_graph(draw):
    """A sequential FIFO run rendered as a graph (always consistent)."""
    n_ops = draw(st.integers(2, 7))
    specs, so, pending = [], [], []
    eid = 0
    for _ in range(n_ops):
        if pending and draw(st.booleans()):
            src = pending.pop(0)
            specs.append((eid, Deq(src), [src]))
            so.append((src, eid))
        else:
            specs.append((eid, Enq(eid), []))
            pending.append(eid)
        eid += 1
    g = closed(*specs, so=so)
    assume(g.so)  # need at least one matched pair to corrupt
    return g


def corrupt(draw, g: Graph) -> Graph:
    """Apply one random corruption; returns the mutated graph."""
    kind = draw(st.sampled_from(
        ["value", "drop_so", "double_so", "retarget_so"]))
    pairs = sorted(g.so)
    a, b = draw(st.sampled_from(pairs))
    if kind == "value":
        ev = g.events[b]
        events = dict(g.events)
        events[b] = Event(eid=ev.eid, kind=Deq(99_999), view=ev.view,
                          logview=ev.logview, thread=ev.thread,
                          commit_index=ev.commit_index)
        return Graph(events=events, so=g.so)
    if kind == "drop_so":
        return Graph(events=g.events, so=g.so - {(a, b)})
    if kind == "double_so":
        deqs = [eid for eid, ev in g.events.items()
                if isinstance(ev.kind, Deq) and eid != b]
        other_enqs = [eid for eid, ev in g.events.items()
                      if isinstance(ev.kind, Enq) and eid != a]
        if other_enqs:
            return Graph(events=g.events, so=g.so | {(other_enqs[0], b)})
        return Graph(events=g.events, so=g.so - {(a, b)})
    # retarget_so: point the dequeue at a different (or phantom) enqueue.
    return Graph(events=g.events,
                 so=(g.so - {(a, b)}) | {(a + 1_000, b)})


@st.composite
def corrupted_graph(draw):
    return corrupt(draw, draw(consistent_queue_graph()))


@given(consistent_queue_graph())
@settings(max_examples=80, deadline=None)
def test_consistent_graphs_accepted(g):
    assert check_queue_consistent(g) == []


@given(corrupted_graph())
@settings(max_examples=120, deadline=None)
def test_every_corruption_flagged(g):
    violations = check_queue_consistent(g) + g.wellformedness_errors()
    assert violations, "a corrupted graph slipped past the checker"


# ----------------------------------------------------------------------
# Stack variant
# ----------------------------------------------------------------------

from repro.core import Pop, Push, check_stack_consistent  # noqa: E402


@st.composite
def consistent_stack_graph(draw):
    n_ops = draw(st.integers(2, 7))
    specs, so, stack = [], [], []
    eid = 0
    for _ in range(n_ops):
        if stack and draw(st.booleans()):
            src = stack.pop()
            specs.append((eid, Pop(src), [src]))
            so.append((src, eid))
        else:
            specs.append((eid, Push(eid), []))
            stack.append(eid)
        eid += 1
    g = closed(*specs, so=so)
    assume(g.so)
    return g


@given(consistent_stack_graph())
@settings(max_examples=80, deadline=None)
def test_consistent_stack_graphs_accepted(g):
    assert check_stack_consistent(g) == []


@st.composite
def corrupted_stack_graph(draw):
    g = draw(consistent_stack_graph())
    kind = draw(st.sampled_from(["value", "drop_so", "double_so"]))
    pairs = sorted(g.so)
    a, b = draw(st.sampled_from(pairs))
    if kind == "value":
        ev = g.events[b]
        events = dict(g.events)
        events[b] = Event(eid=ev.eid, kind=Pop(88_888), view=ev.view,
                          logview=ev.logview, thread=ev.thread,
                          commit_index=ev.commit_index)
        return Graph(events=events, so=g.so)
    if kind == "drop_so":
        return Graph(events=g.events, so=g.so - {(a, b)})
    others = [eid for eid, ev in g.events.items()
              if isinstance(ev.kind, Push) and eid != a]
    if others:
        return Graph(events=g.events, so=g.so | {(others[0], b)})
    return Graph(events=g.events, so=g.so - {(a, b)})


@given(corrupted_stack_graph())
@settings(max_examples=120, deadline=None)
def test_every_stack_corruption_flagged(g):
    violations = check_stack_consistent(g) + g.wellformedness_errors()
    assert violations, "a corrupted stack graph slipped past the checker"
