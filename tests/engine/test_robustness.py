"""Failure handling: transient shard failures and worker crashes."""

import multiprocessing
import os

import pytest

from repro.checking import Scenario, check_scenario
from repro.core import SpecStyle
from repro.engine import (EngineParams, ShardFailed, build_scenario,
                          run_scenario)

from ._support import assert_reports_equal, vyukov_spec

STYLES = (SpecStyle.LAT_HB,)


class TestInlineRetry:
    def test_transient_failure_is_retried(self):
        """A factory that blows up once: the shard is requeued and the
        final report matches a clean run exactly (the poisoned attempt
        leaves no partial counts behind)."""
        base = build_scenario(vyukov_spec())
        state = {"failed": False}

        def flaky_factory():
            if not state["failed"]:
                state["failed"] = True
                raise RuntimeError("transient glitch")
            return base.factory()

        scenario = Scenario(base.name, flaky_factory, base.extract)
        params = EngineParams(styles=STYLES, exhaustive=False, runs=20,
                              seed=4, workers=1, target_shards=4)
        result = run_scenario(scenario, params)
        assert result.telemetry.retries == 1
        serial = check_scenario(base, styles=STYLES, runs=20, seed=4)
        assert_reports_equal(result.report, serial)

    def test_persistent_failure_exhausts_budget(self):
        base = build_scenario(vyukov_spec())

        def doomed_factory():
            raise RuntimeError("always broken")

        scenario = Scenario("doomed", doomed_factory, base.extract)
        params = EngineParams(styles=(), exhaustive=False, runs=4,
                              workers=1, target_shards=1, max_retries=1)
        with pytest.raises(ShardFailed):
            run_scenario(scenario, params)


class TestWorkerCrash:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="ad-hoc scenarios reach workers only under fork")
    def test_crashed_worker_shard_is_requeued(self, tmp_path):
        """One worker process dies hard (os._exit) on its first task; the
        engine recycles the pool, requeues the lost shards, and still
        produces the serial report."""
        flag = tmp_path / "crash-once"
        flag.write_text("")
        parent = os.getpid()
        base = build_scenario(vyukov_spec())

        def crashing_factory():
            if os.getpid() != parent:
                try:
                    flag.unlink()  # atomic: exactly one worker wins
                except FileNotFoundError:
                    pass
                else:
                    os._exit(1)
            return base.factory()

        scenario = Scenario(base.name, crashing_factory, base.extract)
        params = EngineParams(styles=STYLES, exhaustive=False, runs=30,
                              seed=4, workers=2, target_shards=4)
        result = run_scenario(scenario, params)
        assert result.telemetry.retries >= 1
        assert result.telemetry.shards_done == len(result.shards)
        serial = check_scenario(base, styles=STYLES, runs=30, seed=4)
        assert_reports_equal(result.report, serial)
